//! `fleet-bench` — the dependency-free performance runner behind
//! `BENCH_kernel.json`.
//!
//! Usage:
//!
//! ```text
//! fleet-bench [--quick] [--check] [--out PATH]
//! ```
//!
//! Times four layers of the simulator with plain `std::time::Instant` (no
//! Criterion, no external crates) and writes a schema-stable JSON report:
//!
//! * **microbench** — the rewritten index-based structures against their
//!   pre-rewrite map-based baselines, driven through identical op scripts:
//!   the intrusive-list `LruQueue` (by handle, as the kernel uses it) vs
//!   the `BTreeMap`-stamp reference, and the segment/chunk `PageTable` vs
//!   a `HashMap<PageKey, _>` model of the old layout. Both ops/sec numbers
//!   and the speedup are recorded; the rewrite's acceptance bar is ≥2×.
//! * **kernel** — end-to-end page ops through `MemoryManager`: resident
//!   access (table lookup + LRU touch), the cold→fault swap round-trip on
//!   the flash backend, and the same script split into store/load halves
//!   against a zram device (compression cost model, DRAM-charged slots).
//! * **gc** — a full tracing collection over a deterministic object graph.
//! * **figures** — wall-clock for the fig2 / fig5 / fig11 experiment
//!   drivers, end to end through the registry harness.
//! * **obs_overhead** — the fig2 driver inline with and without an
//!   installed observability pipeline; the zero-cost-when-idle contract's
//!   acceptance bar is <10% overhead with tracing live.
//! * **wss_overhead** — the fig2 driver under the legacy `Reactive`
//!   reclaim policy vs a `Swam` variant whose proactive daemon never
//!   fires, isolating the cost of always-on working-set-size tracking on
//!   the hot-launch path (the observe-only contract of DESIGN.md §13).
//! * **integrity_overhead** — the fig2 driver with the swap data-integrity
//!   layer off vs armed (`checked()`) over a quiet fault plan, isolating
//!   the per-slot checksum bookkeeping cost on the hot-launch path
//!   (DESIGN.md §14).
//! * **population** — the headline cohort-throughput row: a sampled
//!   heterogeneous cohort streamed through the parallel device-day runner
//!   (`fleet::population`), reported as simulated device-hours per
//!   wall-second.
//! * **telemetry_overhead** — the same cohort with no SLO monitors vs the
//!   demo monitors armed, isolating the online telemetry/SLO evaluation
//!   cost on the cohort path (DESIGN.md §15); the always-cheap contract's
//!   acceptance bar is <10%.
//!
//! `--quick` shrinks workloads for CI smoke runs; `--check` validates an
//! existing report against the schema (exit 1 on mismatch) instead of
//! benchmarking. Checking is strict: the file must parse back into the
//! report type, carry this binary's schema version, *and* have exactly the
//! expected key tree — the vendored deserialiser ignores unknown fields,
//! so drift is caught by comparing key skeletons, not just by parsing.
//! The default output path is the repo root's `BENCH_kernel.json`
//! regardless of the working directory.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::time::Instant;

use fleet::experiment::harness;
use fleet::population::{run_population, PopulationSpec};
use fleet_gc::{Collector, FullCopyingGc, GcCostModel, NoTouch};
use fleet_heap::{Heap, HeapConfig};
use fleet_kernel::lru::reference::MapLruQueue;
use fleet_kernel::{
    AccessKind, Advice, LruQueue, MemoryManager, MmConfig, PageKey, PageTable, Pid, SwapConfig,
    PAGE_SIZE,
};
use serde::{Deserialize, Serialize};

// ------------------------------------------------------------ JSON schema

/// The report schema this binary writes and `--check` enforces.
const SCHEMA_VERSION: u32 = 7;

/// The full report; field order is the (stable) key order in the file.
#[derive(Serialize, Deserialize)]
struct Report {
    schema_version: u32,
    /// True when produced by a `--quick` (CI smoke) run.
    quick: bool,
    microbench: Microbench,
    kernel: KernelBench,
    gc: GcBench,
    figures: Figures,
    obs_overhead: ObsOverhead,
    wss_overhead: WssOverhead,
    integrity_overhead: IntegrityOverhead,
    population: PopulationBench,
    telemetry_overhead: TelemetryOverhead,
}

#[derive(Serialize, Deserialize)]
struct Microbench {
    lru: Comparison,
    page_table: Comparison,
}

/// New structure vs map baseline over the identical op script.
#[derive(Serialize, Deserialize)]
struct Comparison {
    /// Operations per script pass (same for both sides).
    ops_per_pass: u64,
    new_ops_per_sec: f64,
    baseline_ops_per_sec: f64,
    /// `new_ops_per_sec / baseline_ops_per_sec`.
    speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct KernelBench {
    access_resident_ops_per_sec: f64,
    swap_roundtrip_pages_per_sec: f64,
    /// Swap-out throughput against a zram device (compress + store).
    zram_write_pages_per_sec: f64,
    /// Fault-in throughput against a zram device (load + decompress).
    zram_read_pages_per_sec: f64,
}

#[derive(Serialize, Deserialize)]
struct GcBench {
    trace_objects: u64,
    full_gc_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct Figures {
    fig2_ms: f64,
    fig5_ms: f64,
    fig11_ms: f64,
}

/// Cost of live tracing on the fig2 hot-launch path. Both sides compile
/// the obs layer in; `enabled` installs a fresh pipeline per round.
#[derive(Serialize, Deserialize)]
struct ObsOverhead {
    fig2_disabled_ms: f64,
    fig2_enabled_ms: f64,
    /// `(enabled - disabled) / disabled`, percent. May go slightly
    /// negative from timer noise on a quiet path.
    overhead_pct: f64,
}

/// Cost of working-set-size tracking on the fig2 hot-launch path: the
/// same driver under `Reactive` (tracking off) and under a `Swam` whose
/// daemon never fires (tracking on, no reclaim behaviour change).
#[derive(Serialize, Deserialize)]
struct WssOverhead {
    fig2_reactive_ms: f64,
    fig2_wss_ms: f64,
    /// `(wss - reactive) / reactive`, percent. May go slightly negative
    /// from timer noise — the access hook is one branch and one counter.
    overhead_pct: f64,
}

/// Cost of the swap data-integrity layer on the fig2 hot-launch path: the
/// same driver with the layer off and with `checked()` armed over a quiet
/// fault plan — per-slot checksums, scrub bookkeeping, no injected faults.
#[derive(Serialize, Deserialize)]
struct IntegrityOverhead {
    fig2_off_ms: f64,
    fig2_on_ms: f64,
    /// `(on - off) / off`, percent. May go slightly negative from timer
    /// noise — the store hook is one hash and one map insert.
    overhead_pct: f64,
}

/// Cohort-simulation throughput: a `PopulationSpec::default_mix` cohort
/// through `fleet::population::run_population` on all cores.
#[derive(Serialize, Deserialize)]
struct PopulationBench {
    /// Device-days streamed.
    devices: u64,
    /// Worker threads the cohort runner used.
    threads: u64,
    /// Simulated device-hours the cohort covered.
    sim_device_hours: f64,
    /// Wall-clock seconds the run took.
    wall_secs: f64,
    /// The headline: simulated device-hours per wall-second.
    device_hours_per_wall_sec: f64,
}

/// Cost of the online telemetry/SLO layer on the cohort path: the same
/// sampled cohort with `spec.slos` empty vs the demo monitors armed. The
/// attribution fold itself always runs; this isolates the burn-rate window
/// evaluation and verdict assembly.
#[derive(Serialize, Deserialize)]
struct TelemetryOverhead {
    cohort_plain_ms: f64,
    cohort_slo_ms: f64,
    /// `(slo - plain) / plain`, percent. May go slightly negative from
    /// timer noise — the evaluation is a post-merge pass over slice rows.
    overhead_pct: f64,
}

// ------------------------------------------------------------- timing core

/// Repeats `pass` until `min_secs` of measured time accumulates (at least
/// twice, after one untimed warmup), returning ops/sec. `pass` returns the
/// op count it performed.
fn ops_per_sec(min_secs: f64, mut pass: impl FnMut() -> u64) -> f64 {
    pass(); // warmup: touch allocations, fault in code paths
    let mut ops = 0u64;
    let mut secs = 0.0;
    let mut rounds = 0u32;
    while secs < min_secs || rounds < 2 {
        let start = Instant::now();
        ops += pass();
        secs += start.elapsed().as_secs_f64();
        rounds += 1;
    }
    ops as f64 / secs
}

/// Wall-clock milliseconds of `f`, best of `rounds` (after one warmup).
fn best_ms(rounds: u32, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

// -------------------------------------------------------- LRU microbench

fn lru_key(i: u64) -> PageKey {
    PageKey { pid: Pid((i % 7) as u32), index: i }
}

/// The shared LRU op script: insert `n`, four touch sweeps (every third
/// key), drain half, re-insert cold, drain the rest. Returns the op count.
fn lru_script_new(n: u64) -> u64 {
    let mut q = LruQueue::new();
    let mut ops = 0u64;
    let handles: Vec<_> = (0..n)
        .map(|i| {
            ops += 1;
            q.push_hot(lru_key(i))
        })
        .collect();
    for _ in 0..4 {
        for h in handles.iter().step_by(3) {
            q.touch_handle(*h);
            ops += 1;
        }
    }
    let evicted: Vec<_> = (0..n / 2).map(|_| q.pop_coldest().expect("non-empty")).collect();
    ops += n / 2;
    for &key in evicted.iter().take(n as usize / 4) {
        // Cold re-insertion of evicted keys: the kernel's swap-out path
        // uses the O(1) handle API, not the keyed compat shim.
        q.push_cold(key);
        ops += 1;
    }
    while q.pop_coldest().is_some() {
        ops += 1;
    }
    ops
}

fn lru_script_baseline(n: u64) -> u64 {
    let mut q = MapLruQueue::new();
    let mut ops = 0u64;
    for i in 0..n {
        q.insert(lru_key(i));
        ops += 1;
    }
    for _ in 0..4 {
        for i in (0..n).step_by(3) {
            q.touch(lru_key(i));
            ops += 1;
        }
    }
    let evicted: Vec<_> = (0..n / 2).map(|_| q.pop_coldest().expect("non-empty")).collect();
    ops += n / 2;
    for &key in evicted.iter().take(n as usize / 4) {
        q.reinsert_cold(key);
        ops += 1;
    }
    while q.pop_coldest().is_some() {
        ops += 1;
    }
    ops
}

// ------------------------------------------------- page-table microbench

/// The old page-table layout: one flat hash map over full page keys (the
/// baseline the segment/chunk rewrite replaced).
#[derive(Clone, Copy)]
struct BaselineEntry {
    resident: bool,
    #[allow(dead_code)]
    file: bool,
    node: u32,
}

/// Three Fleet address areas: Java heap near 0, native at 2⁴⁰, file
/// mappings at 2⁴¹ (page indices: address >> 12).
const AREAS: [u64; 3] = [0, 1 << 28, 1 << 29];

/// The shared page-table op script: map `n` pages per area, four lookup
/// sweeps, two swap-out/swap-in sweeps over every other page, unmap all.
fn page_table_script_new(n: u64) -> u64 {
    let mut pt = PageTable::default();
    let mut ops = 0u64;
    for base in AREAS {
        for i in 0..n {
            pt.map(base + i, base != 0, i as u32);
            ops += 1;
        }
    }
    for _ in 0..4 {
        for base in AREAS {
            for i in 0..n {
                assert!(pt.entry(base + i).is_some());
                ops += 1;
            }
        }
    }
    for _ in 0..2 {
        for base in AREAS {
            for i in (0..n).step_by(2) {
                pt.set_swapped(base + i);
                pt.set_resident(base + i, i as u32);
                ops += 2;
            }
        }
    }
    for base in AREAS {
        for i in 0..n {
            pt.unmap(base + i);
            ops += 1;
        }
    }
    ops
}

fn page_table_script_baseline(n: u64) -> u64 {
    let pid = Pid(1);
    let mut pt: HashMap<PageKey, BaselineEntry> = HashMap::new();
    let mut ops = 0u64;
    for base in AREAS {
        for i in 0..n {
            pt.insert(
                PageKey { pid, index: base + i },
                BaselineEntry { resident: true, file: base != 0, node: i as u32 },
            );
            ops += 1;
        }
    }
    for _ in 0..4 {
        for base in AREAS {
            for i in 0..n {
                assert!(pt.contains_key(&PageKey { pid, index: base + i }));
                ops += 1;
            }
        }
    }
    for _ in 0..2 {
        for base in AREAS {
            for i in (0..n).step_by(2) {
                let e = pt.get_mut(&PageKey { pid, index: base + i }).unwrap();
                e.resident = false;
                e.node = u32::MAX;
                let e = pt.get_mut(&PageKey { pid, index: base + i }).unwrap();
                e.resident = true;
                e.node = i as u32;
                ops += 2;
            }
        }
    }
    for base in AREAS {
        for i in 0..n {
            pt.remove(&PageKey { pid, index: base + i });
            ops += 1;
        }
    }
    ops
}

// ------------------------------------------------- kernel + GC end-to-end

fn loaded_mm() -> MemoryManager {
    loaded_mm_with(SwapConfig { capacity_bytes: 32 * 1024 * 1024, ..SwapConfig::default() })
}

/// `loaded_mm`, but swapping to compressed DRAM instead of flash. The
/// compressed slots charge against the frame pool, so the working set is
/// sized to leave headroom for them.
fn zram_mm() -> MemoryManager {
    loaded_mm_with(SwapConfig::try_zram(32 * 1024 * 1024, 2.5).expect("valid zram config"))
}

fn loaded_mm_with(swap: SwapConfig) -> MemoryManager {
    let mut mm =
        MemoryManager::new(MmConfig { dram_bytes: 32 * 1024 * 1024, swap, ..MmConfig::default() });
    for pid in 1..=8u32 {
        mm.map_range(Pid(pid), 0, 2 * 1024 * 1024).expect("fits");
    }
    mm
}

/// A deterministic object graph: a spine with square-root shortcuts, so
/// tracing touches every object through a mix of deep and wide edges.
fn bench_heap(objects: u64) -> Heap {
    let mut heap = Heap::new(HeapConfig::default());
    let ids: Vec<_> = (0..objects).map(|i| heap.alloc(32 + (i % 7) as u32 * 16)).collect();
    heap.add_root(ids[0]);
    for w in ids.windows(2) {
        heap.add_ref(w[0], w[1]);
    }
    for i in (0..objects as usize).step_by(31) {
        heap.add_ref(ids[i], ids[(i * i + 7) % objects as usize]);
    }
    heap
}

fn run_figures(quick: bool) -> Figures {
    let fig_ms = |id: &str| {
        let selected = harness::select(&[id.to_string()]).expect("registry id");
        let reports = harness::run_experiments(&selected, 0xF1EE7, quick, 1, false, None);
        let report = reports.into_iter().next().expect("one report");
        report.result.expect("experiment runs");
        report.elapsed.as_secs_f64() * 1e3
    };
    Figures { fig2_ms: fig_ms("fig2"), fig5_ms: fig_ms("fig5"), fig11_ms: fig_ms("fig11") }
}

/// Times the fig2 driver inline on this thread (installed pipelines are
/// thread-local, so the harness's worker pool would shed them). Traced and
/// untraced rounds interleave so clock-speed drift over the measurement
/// window lands on both sides equally; each side keeps its best round.
fn run_obs_overhead(quick: bool) -> ObsOverhead {
    let selected = harness::select(&["fig2".to_string()]).expect("registry id");
    let exp = selected[0];
    let ctx = harness::ExperimentCtx {
        seed: harness::derive_seed(0xF1EE7, exp.id()),
        quick,
        drilldown: None,
    };
    let plain = || {
        exp.run(&ctx).expect("fig2 runs");
    };
    let traced = || {
        // A fresh pipeline per round: steady-state recording cost, not the
        // cost of appending to an ever-growing span vector.
        let _guard = fleet::obs::install(fleet::obs::shared_pipeline());
        exp.run(&ctx).expect("fig2 runs");
    };
    plain();
    traced();
    let rounds = if quick { 2 } else { 5 };
    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        plain();
        disabled = disabled.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        traced();
        enabled = enabled.min(start.elapsed().as_secs_f64() * 1e3);
    }
    ObsOverhead {
        fig2_disabled_ms: disabled,
        fig2_enabled_ms: enabled,
        overhead_pct: (enabled - disabled) / disabled * 100.0,
    }
}

/// Times the fig2 workload with WSS tracking off (`Reactive`) and on (a
/// `Swam` whose `idle_epochs = u32::MAX` keeps the proactive daemon from
/// ever granting a drain quota, so only the tracking machinery runs).
/// Rounds interleave and each side keeps its best, as in
/// [`run_obs_overhead`].
fn run_wss_overhead(quick: bool) -> WssOverhead {
    use fleet::experiment::launch_basics::{fig2, fig2_with_policy};
    use fleet::{ReclaimPolicy, SwamParams};
    let launches = if quick { 4 } else { 10 };
    let seed = harness::derive_seed(0xF1EE7, "fig2");
    let tracked =
        ReclaimPolicy::Swam(SwamParams { idle_epochs: u32::MAX, ..SwamParams::default() });
    let reactive_round = || {
        fig2(seed, launches).expect("fig2 runs");
    };
    let wss_round = || {
        fig2_with_policy(seed, launches, tracked).expect("fig2 runs");
    };
    reactive_round();
    wss_round();
    let rounds = if quick { 2 } else { 5 };
    let mut reactive = f64::INFINITY;
    let mut wss = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        reactive_round();
        reactive = reactive.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        wss_round();
        wss = wss.min(start.elapsed().as_secs_f64() * 1e3);
    }
    WssOverhead {
        fig2_reactive_ms: reactive,
        fig2_wss_ms: wss,
        overhead_pct: (wss - reactive) / reactive * 100.0,
    }
}

/// Times the fig2 workload with the integrity layer off and armed
/// (`checked()`, quiet plan: checksums and scrub bookkeeping run, nothing
/// is ever corrupt). Rounds interleave and each side keeps its best, as in
/// [`run_obs_overhead`].
fn run_integrity_overhead(quick: bool) -> IntegrityOverhead {
    use fleet::experiment::launch_basics::{fig2, fig2_with_integrity};
    use fleet_kernel::IntegrityConfig;
    let launches = if quick { 4 } else { 10 };
    let seed = harness::derive_seed(0xF1EE7, "fig2");
    let off_round = || {
        fig2(seed, launches).expect("fig2 runs");
    };
    let on_round = || {
        fig2_with_integrity(seed, launches, IntegrityConfig::checked()).expect("fig2 runs");
    };
    off_round();
    on_round();
    let rounds = if quick { 2 } else { 5 };
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        off_round();
        off = off.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        on_round();
        on = on.min(start.elapsed().as_secs_f64() * 1e3);
    }
    IntegrityOverhead { fig2_off_ms: off, fig2_on_ms: on, overhead_pct: (on - off) / off * 100.0 }
}

/// Streams a sampled cohort through the population runner and reports the
/// device-hours-per-wall-second headline.
fn run_population_bench(quick: bool) -> PopulationBench {
    let devices = if quick { 24 } else { 160 };
    let spec = PopulationSpec::default_mix(0xF1EE7, devices);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Warmup: fault in code paths and the allocator on a few device-days.
    run_population(&PopulationSpec::default_mix(0xF1EE7, 4), threads).expect("cohort runs");
    let run = run_population(&spec, threads).expect("cohort runs");
    PopulationBench {
        devices: run.aggregate.devices,
        threads: run.threads as u64,
        sim_device_hours: run.aggregate.device_hours(),
        wall_secs: run.wall.as_secs_f64(),
        device_hours_per_wall_sec: run.device_hours_per_wall_sec(),
    }
}

/// Times the cohort runner with no SLO monitors and with the demo pair
/// armed over the *same* sampled cohort (monitors are a deployment knob:
/// no RNG impact). Rounds interleave and each side keeps its best, as in
/// [`run_obs_overhead`].
fn run_telemetry_overhead(quick: bool) -> TelemetryOverhead {
    use fleet::experiment::fleet_telemetry::demo_slos;
    let devices = if quick { 12 } else { 64 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let plain_spec = PopulationSpec::default_mix(0xF1EE7, devices);
    let mut slo_spec = plain_spec.clone();
    slo_spec.slos = demo_slos();
    let plain_round = || {
        run_population(&plain_spec, threads).expect("cohort runs");
    };
    let slo_round = || {
        run_population(&slo_spec, threads).expect("cohort runs");
    };
    plain_round();
    slo_round();
    let rounds = if quick { 2 } else { 5 };
    let mut plain = f64::INFINITY;
    let mut slo = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        plain_round();
        plain = plain.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        slo_round();
        slo = slo.min(start.elapsed().as_secs_f64() * 1e3);
    }
    TelemetryOverhead {
        cohort_plain_ms: plain,
        cohort_slo_ms: slo,
        overhead_pct: (slo - plain) / plain * 100.0,
    }
}

// ---------------------------------------------------------------- driver

fn run(quick: bool) -> Report {
    let (lru_n, pt_n, gc_objects) = if quick { (512, 512, 20_000) } else { (4096, 4096, 200_000) };
    let min_secs = if quick { 0.05 } else { 0.3 };

    eprintln!("microbench: lru ({lru_n} keys)…");
    let lru_ops = lru_script_new(lru_n);
    assert_eq!(lru_ops, lru_script_baseline(lru_n), "op scripts must match");
    let lru = Comparison {
        ops_per_pass: lru_ops,
        new_ops_per_sec: ops_per_sec(min_secs, || lru_script_new(lru_n)),
        baseline_ops_per_sec: ops_per_sec(min_secs, || lru_script_baseline(lru_n)),
        speedup: 0.0,
    };

    eprintln!("microbench: page table ({pt_n} pages × {} areas)…", AREAS.len());
    let pt_ops = page_table_script_new(pt_n);
    assert_eq!(pt_ops, page_table_script_baseline(pt_n), "op scripts must match");
    let page_table = Comparison {
        ops_per_pass: pt_ops,
        new_ops_per_sec: ops_per_sec(min_secs, || page_table_script_new(pt_n)),
        baseline_ops_per_sec: ops_per_sec(min_secs, || page_table_script_baseline(pt_n)),
        speedup: 0.0,
    };

    eprintln!("kernel: page ops through MemoryManager…");
    let access_resident = {
        let mut mm = loaded_mm();
        let mut i = 0u64;
        ops_per_sec(min_secs, || {
            for _ in 0..256 {
                i = (i + 1) % 512;
                mm.access(Pid(8), i * PAGE_SIZE, 64, AccessKind::Mutator);
            }
            256
        })
    };
    let swap_roundtrip = {
        let mut mm = loaded_mm();
        let pages = 256u64;
        ops_per_sec(min_secs, || {
            mm.madvise(Pid(1), 0, pages * PAGE_SIZE, Advice::ColdRuntime);
            let out = mm.access(Pid(1), 0, pages * PAGE_SIZE, AccessKind::Launch);
            assert!(!out.oom);
            pages
        })
    };
    let (zram_write, zram_read) = {
        // The same round-trip script, but the two halves timed apart:
        // madvise compresses+stores, the launch access loads+decompresses.
        let mut mm = zram_mm();
        let pages = 256u64;
        mm.madvise(Pid(1), 0, pages * PAGE_SIZE, Advice::ColdRuntime);
        mm.access(Pid(1), 0, pages * PAGE_SIZE, AccessKind::Launch);
        let (mut write_secs, mut read_secs, mut ops, mut rounds) = (0.0, 0.0, 0u64, 0u32);
        while write_secs + read_secs < 2.0 * min_secs || rounds < 2 {
            let start = Instant::now();
            mm.madvise(Pid(1), 0, pages * PAGE_SIZE, Advice::ColdRuntime);
            write_secs += start.elapsed().as_secs_f64();
            let start = Instant::now();
            let out = mm.access(Pid(1), 0, pages * PAGE_SIZE, AccessKind::Launch);
            read_secs += start.elapsed().as_secs_f64();
            assert!(!out.oom);
            ops += pages;
            rounds += 1;
        }
        (ops as f64 / write_secs, ops as f64 / read_secs)
    };

    eprintln!("gc: full trace over {gc_objects} objects…");
    let full_gc_ms = best_ms(if quick { 2 } else { 5 }, || {
        let mut heap = bench_heap(gc_objects);
        FullCopyingGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
    });

    eprintln!("figures: fig2 / fig5 / fig11 end to end…");
    let figures = run_figures(quick);

    eprintln!("obs overhead: fig2 with tracing off / on…");
    let obs_overhead = run_obs_overhead(quick);

    eprintln!("wss overhead: fig2 with working-set tracking off / on…");
    let wss_overhead = run_wss_overhead(quick);

    eprintln!("integrity overhead: fig2 with the checksum layer off / on…");
    let integrity_overhead = run_integrity_overhead(quick);

    eprintln!("population: cohort device-days on all cores…");
    let population = run_population_bench(quick);

    eprintln!("telemetry overhead: cohort with SLO monitors off / on…");
    let telemetry_overhead = run_telemetry_overhead(quick);

    let mut report = Report {
        schema_version: SCHEMA_VERSION,
        quick,
        microbench: Microbench { lru, page_table },
        kernel: KernelBench {
            access_resident_ops_per_sec: access_resident,
            swap_roundtrip_pages_per_sec: swap_roundtrip,
            zram_write_pages_per_sec: zram_write,
            zram_read_pages_per_sec: zram_read,
        },
        gc: GcBench { trace_objects: gc_objects, full_gc_ms },
        figures,
        obs_overhead,
        wss_overhead,
        integrity_overhead,
        population,
        telemetry_overhead,
    };
    report.microbench.lru.speedup =
        report.microbench.lru.new_ops_per_sec / report.microbench.lru.baseline_ops_per_sec;
    report.microbench.page_table.speedup = report.microbench.page_table.new_ops_per_sec
        / report.microbench.page_table.baseline_ops_per_sec;
    report
}

// ---------------------------------------------------------- schema check

/// Collects every object key path in `value` (arrays descend as `[]`).
fn key_skeleton(value: &serde::Value, path: &str, out: &mut BTreeSet<String>) {
    match value {
        serde::Value::Object(fields) => {
            for (key, child) in fields {
                let child_path =
                    if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                out.insert(child_path.clone());
                key_skeleton(child, &child_path, out);
            }
        }
        serde::Value::Array(items) => {
            let child_path = format!("{path}[]");
            for item in items {
                key_skeleton(item, &child_path, out);
            }
        }
        _ => {}
    }
}

/// Strict schema validation: parse, version match, and exact key-tree
/// equality against a round-trip through the report type (the vendored
/// deserialiser ignores unknown fields, so parsing alone misses drift).
fn check_report(text: &str) -> Result<Report, String> {
    let raw: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let report: Report =
        serde_json::from_str(text).map_err(|e| format!("does not parse as a report: {e}"))?;
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema version {} does not match this binary's v{SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    let mut found = BTreeSet::new();
    key_skeleton(&raw, "", &mut found);
    let mut expected = BTreeSet::new();
    key_skeleton(&serde::Serialize::to_value(&report), "", &mut expected);
    if found != expected {
        let mut why = String::from("key tree drifted from the schema:");
        for extra in found.difference(&expected) {
            why.push_str(&format!("\n  unexpected key `{extra}`"));
        }
        for missing in expected.difference(&found) {
            why.push_str(&format!("\n  missing key `{missing}`"));
        }
        return Err(why);
    }
    Ok(report)
}

fn default_out() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernel.json")
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: fleet-bench [--quick] [--check] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut out = default_out();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => {
                out = args
                    .next()
                    .map(Into::into)
                    .unwrap_or_else(|| usage_error("--out needs a path"));
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }

    if check {
        // Schema validation only: parse + version + exact key tree.
        let text = match std::fs::read_to_string(&out) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {}: {e}", out.display());
                std::process::exit(1);
            }
        };
        match check_report(&text) {
            Ok(report) => {
                println!(
                    "{} ok (schema v{}, lru ×{:.2}, page table ×{:.2}, {:.1} device-h/s)",
                    out.display(),
                    report.schema_version,
                    report.microbench.lru.speedup,
                    report.microbench.page_table.speedup,
                    report.population.device_hours_per_wall_sec,
                );
            }
            Err(why) => {
                eprintln!("{} does not match the report schema: {why}", out.display());
                std::process::exit(1);
            }
        }
        return;
    }

    let report = run(quick);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n")
        .unwrap_or_else(|e| usage_error(&format!("cannot write {}: {e}", out.display())));

    println!();
    println!(
        "LRU:        {:>12.0} ops/s new  {:>12.0} ops/s map baseline  (×{:.2})",
        report.microbench.lru.new_ops_per_sec,
        report.microbench.lru.baseline_ops_per_sec,
        report.microbench.lru.speedup
    );
    println!(
        "Page table: {:>12.0} ops/s new  {:>12.0} ops/s map baseline  (×{:.2})",
        report.microbench.page_table.new_ops_per_sec,
        report.microbench.page_table.baseline_ops_per_sec,
        report.microbench.page_table.speedup
    );
    println!(
        "Kernel:     {:>12.0} resident accesses/s  {:>12.0} swap round-trip pages/s",
        report.kernel.access_resident_ops_per_sec, report.kernel.swap_roundtrip_pages_per_sec
    );
    println!(
        "Zram:       {:>12.0} store pages/s        {:>12.0} fault-in pages/s",
        report.kernel.zram_write_pages_per_sec, report.kernel.zram_read_pages_per_sec
    );
    println!(
        "GC:         full trace of {} objects in {:.1} ms",
        report.gc.trace_objects, report.gc.full_gc_ms
    );
    println!(
        "Figures:    fig2 {:.0} ms   fig5 {:.0} ms   fig11 {:.0} ms",
        report.figures.fig2_ms, report.figures.fig5_ms, report.figures.fig11_ms
    );
    println!(
        "Obs:        fig2 {:.0} ms untraced   {:.0} ms traced   ({:+.1}% overhead)",
        report.obs_overhead.fig2_disabled_ms,
        report.obs_overhead.fig2_enabled_ms,
        report.obs_overhead.overhead_pct
    );
    println!(
        "WSS:        fig2 {:.0} ms untracked   {:.0} ms tracked   ({:+.1}% overhead)",
        report.wss_overhead.fig2_reactive_ms,
        report.wss_overhead.fig2_wss_ms,
        report.wss_overhead.overhead_pct
    );
    println!(
        "Integrity:  fig2 {:.0} ms off   {:.0} ms armed   ({:+.1}% overhead)",
        report.integrity_overhead.fig2_off_ms,
        report.integrity_overhead.fig2_on_ms,
        report.integrity_overhead.overhead_pct
    );
    println!(
        "Population: {} device-days on {} threads — {:.1} simulated device-hours \
         in {:.1} s  ({:.1} device-hours/wall-sec)",
        report.population.devices,
        report.population.threads,
        report.population.sim_device_hours,
        report.population.wall_secs,
        report.population.device_hours_per_wall_sec
    );
    println!(
        "Telemetry:  cohort {:.0} ms plain   {:.0} ms with SLO monitors   ({:+.1}% overhead)",
        report.telemetry_overhead.cohort_plain_ms,
        report.telemetry_overhead.cohort_slo_ms,
        report.telemetry_overhead.overhead_pct
    );
    println!("wrote {}", out.display());
}
