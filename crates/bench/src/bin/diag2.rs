//! Launch-composition diagnostic for Fleet calibration.

use fleet::experiment::scenario::AppPool;
use fleet::SchemeKind;

fn main() {
    let apps: Vec<String> = [
        "Twitter",
        "Facebook",
        "Instagram",
        "Youtube",
        "Tiktok",
        "Spotify",
        "Chrome",
        "GoogleMaps",
        "AmazonShop",
        "LinkedIn",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut pool = AppPool::under_pressure(SchemeKind::Fleet, &apps, 42).expect("valid pool");
    for i in 0..5 {
        let other = apps[(i + 1) % apps.len()].clone();
        pool.launch(&other).expect("known app");
        pool.device_mut().run(30);
        let (pid, _) = pool.ensure("Twitter").expect("known app");
        let breakdown = pool.device_mut().launch_breakdown(pid);
        println!("cycle {i}: psi={:.2} {:?}", pool.device().psi(), breakdown);
        let report = pool.device_mut().switch_to(pid);
        println!(
            "  launch total={} stall={} pages={}",
            report.total, report.fault_stall, report.faulted_pages
        );
        let proc = pool.device().process(pid);
        println!(
            "  heap live={}KiB used={}KiB regions={} gcs={}",
            proc.heap.live_bytes() / 1024,
            proc.heap.used_bytes() / 1024,
            proc.heap.stats().regions,
            proc.gcs.len()
        );
    }
}
