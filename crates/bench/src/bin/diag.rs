//! Calibration diagnostic: prints the key differentiating numbers per
//! scheme so the simulator can be tuned against the paper's shapes.

use fleet::experiment::scenario::AppPool;
use fleet::{Device, DeviceConfig, SchemeKind};
use fleet_apps::synthetic_app;
use fleet_metrics::Summary;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let what = args.get(1).map(|s| s.as_str()).unwrap_or("all");

    if what == "capacity" || what == "all" {
        println!("== synthetic capacity (large 2048B, 24 launches, 10s use) ==");
        for scheme in SchemeKind::ALL {
            let mut config = DeviceConfig::pixel3(scheme);
            config.seed = 1;
            let mut device = Device::new(config);
            let app = synthetic_app(2048, 180);
            let mut max = 0;
            for _ in 0..24 {
                device.launch_cold(&app);
                device.run(10);
                max = max.max(device.cached_apps());
            }
            println!(
                "{scheme:>16}: max={max} final={} kills={} swap_used={}MiB free={}MiB oom_skips={}",
                device.cached_apps(),
                device.kills().len(),
                device.mm().swap().used_pages() * 4096 / (1024 * 1024),
                device.mm().free_frames() * 4096 / (1024 * 1024),
                device.oom_touch_skips(),
            );
        }
        println!("== synthetic capacity (small 512B) ==");
        for scheme in [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet] {
            let mut config = DeviceConfig::pixel3(scheme);
            config.seed = 1;
            let mut device = Device::new(config);
            let app = synthetic_app(512, 180);
            let mut max = 0;
            for _ in 0..24 {
                device.launch_cold(&app);
                device.run(10);
                max = max.max(device.cached_apps());
            }
            println!(
                "{scheme:>16}: max={max} final={} kills={}",
                device.cached_apps(),
                device.kills().len()
            );
        }
    }

    if what == "hot" || what == "all" {
        println!("== hot launch under pressure (10 apps, 6 launches of Twitter) ==");
        let apps: Vec<String> = [
            "Twitter",
            "Facebook",
            "Instagram",
            "Youtube",
            "Tiktok",
            "Spotify",
            "Chrome",
            "GoogleMaps",
            "AmazonShop",
            "LinkedIn",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        for scheme in SchemeKind::ALL {
            let mut pool = AppPool::under_pressure(scheme, &apps, 42).expect("valid pool");
            let reports = pool.measure_hot_launches("Twitter", 6).expect("known app");
            let ms: Vec<f64> = reports.iter().map(|r| r.total.as_millis_f64()).collect();
            let s = Summary::from_values(ms.clone());
            let stalls: Vec<f64> = reports.iter().map(|r| r.fault_stall.as_millis_f64()).collect();
            let faults: Vec<u64> = reports.iter().map(|r| r.faulted_pages).collect();
            let stws: Vec<f64> = reports.iter().map(|r| r.gc_stw.as_millis_f64()).collect();
            println!(
                "{scheme:>16}: n={} median={:.0}ms p90={:.0}ms stalls={:?} pages={faults:?} stw={stws:?} cached={} kills={}",
                s.len(),
                s.median(),
                s.p90(),
                stalls.iter().map(|v| *v as u64).collect::<Vec<_>>(),
                pool.device().cached_apps(),
                pool.device().kills().len(),
            );
        }
    }
}
