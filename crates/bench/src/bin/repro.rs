//! `repro` — regenerates every table and figure of the Fleet paper.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--seed N] [--export DIR] [--threads N] [--list]
//!       [SELECTOR ...]
//! ```
//!
//! A `SELECTOR` is an experiment id (`fig13`), an alias (`fig15`, `cdf`),
//! a driver module (`hot_launch`), or a glob over those (`fig1*`);
//! comma-separated lists work too (`repro hot_launch,fig11*`). With no
//! selector, `all` runs the full registry. `--list` prints the id table.
//!
//! Experiments run in parallel (`--threads`, default: the machine's
//! parallelism). Each experiment's RNG seed is derived from `--seed` and
//! its id, so output — including `--export DIR` JSON, one file per
//! artifact — is bit-identical whatever the thread count.
//!
//! Each section prints the simulator's measurement next to the paper's
//! reported value. Absolute numbers are not expected to match (the
//! substrate is a simulator, not a Pixel 3); the *shape* — who wins, by
//! roughly what factor, where crossovers fall — is the reproduction target.
//! EXPERIMENTS.md records a snapshot of this output with commentary.

use fleet::experiment::export::ExportRecord;
use fleet::experiment::harness;
use fleet_metrics::Table;

struct Opts {
    quick: bool,
    seed: u64,
    what: Vec<String>,
    export: Option<std::path::PathBuf>,
    threads: usize,
    list: bool,
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: repro [--quick] [--seed N] [--export DIR] [--threads N] [--list] [SELECTOR ...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        seed: 0xF1EE7,
        what: Vec::new(),
        export: None,
        threads: default_threads(),
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--seed needs a number"));
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage_error("--threads needs a positive number"));
            }
            "--export" => {
                let dir = args.next().unwrap_or_else(|| usage_error("--export needs a directory"));
                opts.export = Some(std::path::PathBuf::from(dir));
            }
            other if other.starts_with('-') => usage_error(&format!("unknown flag `{other}`")),
            other => {
                opts.what.extend(other.split(',').filter(|s| !s.is_empty()).map(|s| s.to_string()))
            }
        }
    }
    if opts.what.is_empty() {
        opts.what.push("all".to_string());
    }
    opts
}

fn print_registry() {
    let mut t = Table::new(["Id", "Aliases", "Module", "Title"]);
    for exp in harness::REGISTRY {
        t.row([
            exp.id().to_string(),
            exp.aliases().join(", "),
            exp.module().to_string(),
            exp.title().to_string(),
        ]);
    }
    print!("{t}");
}

fn main() {
    let opts = parse_args();
    if opts.list {
        print_registry();
        return;
    }

    let selected = match harness::select(&opts.what) {
        Ok(selected) => selected,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("run `repro --list` for the experiment table");
            std::process::exit(2);
        }
    };

    if let Some(dir) = &opts.export {
        if let Err(e) = std::fs::create_dir_all(dir) {
            usage_error(&format!("cannot create export dir {}: {e}", dir.display()));
        }
    }

    let reports = harness::run_experiments(&selected, opts.seed, opts.quick, opts.threads, true);

    let mut failed = false;
    for report in &reports {
        match &report.result {
            Ok(output) => {
                print!("{}", output.render());
                if let Some(dir) = &opts.export {
                    for artifact in &output.exports {
                        let record =
                            ExportRecord::new(&artifact.id, &artifact.paper, &artifact.data);
                        match record.write_to_dir(dir) {
                            Ok(path) => println!("[exported {}]", path.display()),
                            Err(e) => {
                                eprintln!("export of {} failed: {e}", artifact.id);
                                failed = true;
                            }
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("{} failed: {e}", report.id);
                failed = true;
            }
        }
    }

    println!();
    println!("done.");
    if failed {
        std::process::exit(1);
    }
}
