//! `repro` — regenerates every table and figure of the Fleet paper.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--seed N] [--export DIR]
//!       [all|fig2|fig3|fig4|fig5|fig6|fig7|table1|table2|table3|
//!        fig11|fig12|fig13|fig14|fig15|fig16|cpu|power|overhead|
//!        sensitivity|ablation]
//! ```
//!
//! With `--export DIR`, the raw records behind the major figures are also
//! written as JSON (one file per experiment) for external plotting — the
//! analogue of the paper artifact's notebook inputs.
//!
//! Each section prints the simulator's measurement next to the paper's
//! reported value. Absolute numbers are not expected to match (the
//! substrate is a simulator, not a Pixel 3); the *shape* — who wins, by
//! roughly what factor, where crossovers fall — is the reproduction target.
//! EXPERIMENTS.md records a snapshot of this output with commentary.

use fleet::experiment::export::ExportRecord;
use fleet::experiment::{
    ablation, access_trace, caching, frames, gc_working_set, hot_launch, launch_basics,
    lifetimes, object_sizes, reaccess, runtime, sensitivity, tables,
};
use serde::Serialize;
use fleet_metrics::{correlation, Summary, Table};

struct Opts {
    quick: bool,
    seed: u64,
    what: Vec<String>,
    export: Option<std::path::PathBuf>,
}

impl Opts {
    fn export<T: Serialize>(&self, id: &str, paper: &str, data: &T) {
        let Some(dir) = &self.export else { return };
        std::fs::create_dir_all(dir).expect("create export dir");
        match ExportRecord::new(id, paper, data).write_to_dir(dir) {
            Ok(path) => println!("[exported {}]", path.display()),
            Err(e) => eprintln!("export of {id} failed: {e}"),
        }
    }
}

fn parse_args() -> Opts {
    let mut opts = Opts { quick: false, seed: 0xF1EE7, what: Vec::new(), export: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs a number"));
            }
            "--export" => {
                let dir = args.next().unwrap_or_else(|| panic!("--export needs a directory"));
                opts.export = Some(std::path::PathBuf::from(dir));
            }
            other => opts.what.push(other.to_string()),
        }
    }
    if opts.what.is_empty() {
        opts.what.push("all".to_string());
    }
    opts
}

fn wants(opts: &Opts, key: &str) -> bool {
    opts.what.iter().any(|w| w == key || w == "all")
}

fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

fn main() {
    let opts = parse_args();
    let seed = opts.seed;
    let launches = if opts.quick { 6 } else { 20 };

    if wants(&opts, "table1") {
        header("Table 1 — comparison methods");
        print!("{}", tables::table1());
    }
    if wants(&opts, "table2") {
        header("Table 2 — Fleet's default parameters");
        print!("{}", tables::table2());
    }
    if wants(&opts, "table3") {
        header("Table 3 — commercial apps for evaluation");
        print!("{}", tables::table3());
    }

    if wants(&opts, "fig2") {
        header("Figure 2 — hot vs cold launch times (idle device)");
        let rows = launch_basics::fig2(seed, launches.min(10));
        opts.export("fig2", "hot ≪ cold; Twitter 273 vs 2390 ms", &rows);
        let mut t = Table::new(["App", "Hot (ms)", "Cold (ms)", "Cold/Hot", "Paper (hot/cold, Twitter: 273/2390)"]);
        for r in &rows {
            t.row([
                r.app.clone(),
                format!("{:.0} ± {:.0}", r.hot_mean_ms, r.hot_std_ms),
                format!("{:.0} ± {:.0}", r.cold_mean_ms, r.cold_std_ms),
                format!("{:.1}x", r.cold_mean_ms / r.hot_mean_ms),
                "hot ≪ cold for every app".to_string(),
            ]);
        }
        print!("{t}");
    }

    if wants(&opts, "fig4") {
        header("Figure 4 — accessed objects over time (Amazon shop, Android)");
        let result = access_trace::fig4(seed);
        println!("markers: {:?}", result.markers);
        let mut t = Table::new(["Window (s)", "Mutator samples", "GC samples", "Launch samples"]);
        let count = |from: f64, to: f64, src: fleet::TraceSource| {
            result.samples.iter().filter(|s| s.secs >= from && s.secs < to && s.source == src).count()
        };
        for w in [(0.0, 20.0), (20.0, 35.0), (35.0, 40.0), (40.0, 52.0), (52.0, 62.0)] {
            t.row([
                format!("{:.0}–{:.0}", w.0, w.1),
                count(w.0, w.1, fleet::TraceSource::Mutator).to_string(),
                count(w.0, w.1, fleet::TraceSource::Gc).to_string(),
                count(w.0, w.1, fleet::TraceSource::Launch).to_string(),
            ]);
        }
        print!("{t}");
        println!("paper shape: quiet background, GC access spike ≈37 s, launch re-accesses ≈53 s");
    }

    if wants(&opts, "fig5") {
        header("Figure 5 — FGO/BGO lifetimes and footprints");
        let result = lifetimes::fig5(seed, 15);
        println!(
            "5a FGO alive after 15 GCs: {:.0}%   (paper: > 40%)",
            result.fgo_lifetime.overflow_percent()
        );
        println!(
            "5b BGO alive after 15 GCs: {:.0}%   (paper: most BGO die within the first few GCs)",
            result.bgo_lifetime.overflow_percent()
        );
        let bgo_early: u64 = (0..3).map(|c| result.bgo_lifetime.count(c)).sum();
        println!(
            "5b BGO dying within 3 GCs: {:.0}%",
            100.0 * bgo_early as f64 / result.bgo_lifetime.total().max(1) as f64
        );
        let mut t = Table::new(["App", "FGO (MB)", "BGO (MB)", "Paper: FGO occupy the majority"]);
        for row in &result.footprints {
            t.row([
                row.app.clone(),
                format!("{:.1}", row.fgo_mb),
                format!("{:.2}", row.bgo_mb),
                String::new(),
            ]);
        }
        print!("{t}");
    }

    if wants(&opts, "fig6") {
        header("Figure 6a — NRO/FYO re-access shares and footprints");
        let rows = reaccess::fig6a(seed);
        let mut t = Table::new(["App", "NRO %", "FYO %", "Both %", "NRO mem %", "FYO mem %", "Both mem %"]);
        for r in &rows {
            t.row([
                r.app.clone(),
                format!("{:.0}", r.nro_share_pct),
                format!("{:.0}", r.fyo_share_pct),
                format!("{:.0}", r.both_share_pct),
                format!("{:.1}", r.nro_mem_pct),
                format!("{:.1}", r.fyo_mem_pct),
                format!("{:.1}", r.both_mem_pct),
            ]);
        }
        print!("{t}");
        println!("paper averages: NRO ≈50%, FYO ≈40%, both ≈68% of re-accesses for ≈15.5% of memory");
        header("Figure 6b — NRO depth sweep (Twitter)");
        let points = reaccess::fig6b(seed, 14);
        let mut t = Table::new(["Depth D", "Re-access coverage %", "Memory footprint %"]);
        for p in &points {
            t.row([p.depth.to_string(), format!("{:.0}", p.reaccess_coverage_pct), format!("{:.1}", p.mem_footprint_pct)]);
        }
        print!("{t}");
        println!("paper shape: coverage rises much faster than footprint at small D");
    }

    if wants(&opts, "fig7") {
        header("Figure 7 — object-size distribution (CDF %)");
        let rows = object_sizes::fig7(seed, 50_000);
        let mut head = vec!["Size (B)".to_string()];
        head.extend(rows.iter().map(|r| r.app.clone()));
        let mut t = Table::new(head);
        for (i, &(size, _)) in rows[0].cdf.iter().enumerate() {
            let mut cells = vec![size.to_string()];
            cells.extend(rows.iter().map(|r| format!("{:.0}", r.cdf[i].1)));
            t.row(cells);
        }
        print!("{t}");
        println!("paper shape: the vast majority of objects are far below the 4096 B page size");
    }

    if wants(&opts, "fig11") {
        header("Figure 11a — caching capacity, large-object (2048 B) synthetic apps");
        let (max_apps, use_secs) = if opts.quick { (20, 6) } else { (28, 30) };
        let curves = caching::fig11a(seed, max_apps, use_secs);
        opts.export("fig11a", "Android ≈14, Marvin ≈18, Fleet ≈18", &curves);
        print_capacity(&curves, "paper: Android max ≈14 (kills from 11), Marvin ≈18, Fleet ≈18");
        header("Figure 11b — caching capacity, small-object (512 B) synthetic apps");
        let curves = caching::fig11b(seed, max_apps, use_secs);
        opts.export("fig11b", "Marvin ≈9, Fleet ≈18 (2x)", &curves);
        print_capacity(&curves, "paper: Marvin collapses to ≈9; Fleet stays ≈18 (2x)");
        header("Figure 11c — caching capacity, commercial apps (round-robin)");
        let results = caching::fig11c(seed, if opts.quick { 1 } else { 2 }, if opts.quick { 8 } else { 30 });
        let mut t = Table::new(["Scheme", "Max cached", "Paper"]);
        for r in &results {
            t.row([r.scheme.clone(), r.max_cached.to_string(), "Fleet 17 ≈ 1.21x Android-with-swap".to_string()]);
        }
        print!("{t}");
    }

    if wants(&opts, "fig12") {
        header("Figure 12a — background GC working set (objects, real-scale)");
        let rows = gc_working_set::fig12a(seed);
        opts.export("fig12a", "≈7x working-set reduction", &rows);
        let mut t = Table::new(["App", "Android", "Fleet w/o BGC", "Fleet w/ BGC", "Reduction"]);
        for r in &rows {
            t.row([
                r.app.clone(),
                r.android.to_string(),
                r.fleet_without_bgc.to_string(),
                r.fleet_with_bgc.to_string(),
                format!("{:.1}x", r.android as f64 / r.fleet_with_bgc.max(1) as f64),
            ]);
        }
        print!("{t}");
        println!(
            "average reduction {:.1}x   (paper: ≈7x, from ~7e5 to ~1e5 objects)",
            gc_working_set::average_reduction(&rows)
        );
        header("Figure 12b — accessed objects over 600 s (Twitch), Android vs Fleet");
        for result in access_trace::fig12b(seed) {
            let bg_gc = access_trace::gc_samples_in_window(&result, 190.0, 480.0);
            println!("{:>8}: GC-touched samples in the background window = {bg_gc}", result.scheme);
        }
        println!("paper shape: Fleet's background GC activity is an order of magnitude lower");
    }

    let mut fig13_data = None;
    if wants(&opts, "fig13") || wants(&opts, "fig15") || wants(&opts, "fig16") || wants(&opts, "cdf") {
        header("Figure 13 — hot-launch under memory pressure (Android / Marvin / Fleet)");
        let data = hot_launch::fig13(seed, launches);
        opts.export("fig13", "Fleet 1.59x vs Android, 2.62x vs Marvin (medians)", &data);
        let median_rows = hot_launch::speedups_at(&data, 50.0);
        let mut t = Table::new(["App", "Android p50", "Marvin p50", "Fleet p50", "vs Android", "vs Marvin", "Java heap %"]);
        for r in &median_rows {
            t.row([
                r.app.clone(),
                format!("{:.0} ms", r.android_ms),
                format!("{:.0} ms", r.marvin_ms),
                format!("{:.0} ms", r.fleet_ms),
                format!("{:.2}x", r.speedup_vs_android),
                format!("{:.2}x", r.speedup_vs_marvin),
                format!("{:.0}", r.java_heap_pct),
            ]);
        }
        print!("{t}");
        println!(
            "13m geomean median speedup: {:.2}x vs Android (paper 1.59x), {:.2}x vs Marvin (paper 2.62x)",
            hot_launch::geomean_speedup(&median_rows, false),
            hot_launch::geomean_speedup(&median_rows, true)
        );
        // 13n: speedup vs java-heap share correlation.
        let corr = correlation(
            &median_rows.iter().map(|r| r.java_heap_pct).collect::<Vec<_>>(),
            &median_rows.iter().map(|r| r.speedup_vs_android).collect::<Vec<_>>(),
        );
        println!("13n correlation(speedup, java-heap %): {corr:.2}   (paper: positive correlation)");
        fig13_data = Some(data);
    }

    if wants(&opts, "fig15") {
        header("Figure 15 — speedup at the 90th/10th percentile and the mean");
        let data = fig13_data.as_ref().expect("fig13 ran above");
        for (label, p, paper) in [("90th", 90.0, "2.56x vs Android, 4.45x vs Marvin"), ("10th", 10.0, "modest"), ] {
            let rows = hot_launch::speedups_at(data, p);
            println!(
                "{label} percentile: {:.2}x vs Android, {:.2}x vs Marvin   (paper: {paper})",
                hot_launch::geomean_speedup(&rows, false),
                hot_launch::geomean_speedup(&rows, true)
            );
        }
        let rows = hot_launch::mean_speedups(data);
        println!(
            "mean: {:.2}x vs Android, {:.2}x vs Marvin",
            hot_launch::geomean_speedup(&rows, false),
            hot_launch::geomean_speedup(&rows, true)
        );
    }

    if wants(&opts, "cdf") {
        header("Figure 13a–l — hot-launch CDF curves (10-point summaries)");
        let data = match &fig13_data {
            Some(d) => d,
            None => {
                println!("(run together with fig13, e.g. `repro fig13 cdf`)");
                &Vec::new()
            }
        };
        for scheme in data {
            for (app, samples) in &scheme.per_app_ms {
                let cdf = fleet_metrics::Cdf::from_values(samples.iter().copied());
                let curve: Vec<String> = cdf
                    .curve(10)
                    .into_iter()
                    .map(|(ms, frac)| format!("{:.0}ms:{:.0}%", ms, 100.0 * frac))
                    .collect();
                println!("{:>8} {:<12} {}", scheme.scheme, app, curve.join(" "));
            }
        }
    }

    if wants(&opts, "fig16") {
        header("Figure 16 — remaining six apps (CDF summary)");
        let data = fig13_data.as_ref().expect("fig13 ran above");
        let mut t = Table::new(["App", "Scheme", "p10", "p50", "p90 (ms)"]);
        for app in fleet::experiment::scenario::fig16_apps() {
            for d in data {
                let s = d.summary(&app);
                t.row([
                    app.clone(),
                    d.scheme.clone(),
                    format!("{:.0}", s.p10()),
                    format!("{:.0}", s.median()),
                    format!("{:.0}", s.p90()),
                ]);
            }
        }
        print!("{t}");
        println!("paper note: Candy Crush (4% Java heap) sees little benefit — Fleet targets the Java heap");
    }

    if wants(&opts, "fig3") {
        header("Figure 3 — 90th-percentile tail hot-launch (motivation)");
        let data = hot_launch::fig3(seed, launches.min(10));
        let mut t = Table::new(["App", "w/o swap p90", "w/ swap p90", "Marvin p90 (ms)"]);
        let apps: Vec<String> = data[0].per_app_ms.keys().cloned().collect();
        for app in &apps {
            t.row([
                app.clone(),
                format!("{:.0}", data[0].summary(app).p90()),
                format!("{:.0}", data[1].summary(app).p90()),
                format!("{:.0}", data[2].summary(app).p90()),
            ]);
        }
        print!("{t}");
        let agg = |d: &hot_launch::HotLaunchData| {
            Summary::from_values(d.per_app_ms.values().flatten().copied()).p90()
        };
        println!(
            "aggregate p90: no-swap {:.0} ms, swap {:.0} ms, Marvin {:.0} ms   (paper: both swap and Marvin deteriorate tails, e.g. Instagram 147→1027 ms)",
            agg(&data[0]),
            agg(&data[1]),
            agg(&data[2])
        );
    }

    if wants(&opts, "fig14") {
        header("Figure 14 — frame rendering: jank ratio and FPS");
        let secs = if opts.quick { 20 } else { 60 };
        let apps = if opts.quick {
            Some(vec!["Twitter".to_string(), "Tiktok".to_string(), "Chrome".to_string(), "CandyCrush".to_string()])
        } else {
            None
        };
        let rows = frames::fig14(seed, secs, apps);
        let mut t = Table::new(["Scheme", "Mean jank %", "Mean FPS", "Paper"]);
        for (scheme, jank, fps) in frames::scheme_means(&rows) {
            let paper = match scheme.as_str() {
                "Fleet" => "≈ Android; 19.9%/20.3% better than Marvin",
                "Marvin" => "worst jank and FPS",
                _ => "baseline",
            };
            t.row([scheme, format!("{jank:.1}"), format!("{fps:.1}"), paper.to_string()]);
        }
        print!("{t}");
    }

    if wants(&opts, "cpu") {
        header("§7.3 — CPU usage");
        let rows = runtime::cpu_usage(seed, if opts.quick { 2 } else { 4 });
        let mut t = Table::new(["Scheme", "Total CPU (s)", "GC share %", "Kernel share %"]);
        for r in &rows {
            t.row([
                r.scheme.clone(),
                format!("{:.2}", r.total_cpu_s),
                format!("{:.2}", r.gc_share_pct),
                format!("{:.2}", r.kernel_share_pct),
            ]);
        }
        print!("{t}");
        let get = |name: &str| rows.iter().find(|r| r.scheme == name).map(|r| r.total_cpu_s).unwrap_or(0.0);
        println!(
            "Fleet vs Android: {:+.2}%   (paper: +0.18%);  Fleet vs Marvin: {:+.2}%   (paper: −3.21%)",
            100.0 * (get("Fleet") - get("Android")) / get("Android"),
            100.0 * (get("Fleet") - get("Marvin")) / get("Marvin"),
        );
    }

    if wants(&opts, "power") {
        header("§7.3 — power consumption");
        let rows = runtime::power(seed, if opts.quick { 1 } else { 2 });
        let mut t = Table::new(["Scheme", "Average (mW)", "CPU (mW)", "Swap (mW)", "Paper"]);
        for r in &rows {
            let paper = if r.scheme == "Fleet" { "1851 ± 143 mW" } else { "1817 ± 197 mW" };
            t.row([
                r.scheme.clone(),
                format!("{:.0}", r.average_mw),
                format!("{:.0}", r.cpu_mw),
                format!("{:.0}", r.swap_mw),
                paper.to_string(),
            ]);
        }
        print!("{t}");
        println!("paper: equal within the standard error");
    }

    if wants(&opts, "overhead") {
        header("§7.3 — memory overhead (card table)");
        let report = runtime::memory_overhead();
        println!(
            "card table for a 4 GiB heap: {} MiB   (paper: 4 MB, fixed, ∝ heap size)",
            report.card_table_bytes_per_4gib / (1024 * 1024)
        );
        println!("bytes of card table per heap byte: {:.6}", report.bytes_per_heap_byte);
    }

    if wants(&opts, "sensitivity") {
        header("§7.4 — sensitivity to the background heap-size factor");
        let rows = sensitivity::sensitivity(seed, if opts.quick { 14 } else { 24 }, if opts.quick { 4 } else { 8 });
        let mut t = Table::new(["Scheme", "Factor", "Max cached", "Median hot (ms)"]);
        for r in &rows {
            t.row([
                r.scheme.clone(),
                format!("{:.1}", r.factor),
                r.max_cached.to_string(),
                format!("{:.0}", r.median_hot_ms),
            ]);
        }
        print!("{t}");
        println!("paper: Fleet's caching gain needs 1.1x; Fleet's launch time is robust across factors, Android's varies ≈31%");
    }

    if wants(&opts, "ablation") {
        header("Extensions — Fleet mechanism ablations");
        let (l, cap) = if opts.quick { (4, 14) } else { (8, 22) };
        let variants = ablation::fleet_variants(seed, l, cap);
        opts.export("ablation_fleet", "mechanism knock-outs", &variants);
        print_ablation(&variants);
        println!("BGC carries the caching capacity; COLD_RUNTIME buys headroom; HOT_RUNTIME is");
        println!("precautionary at this pressure; the depth parameter D trades launch coverage");
        println!("for launch-region footprint (see Figure 6b).");
        header("Extensions — ASAP-style prefetching vs Fleet (§8 related work)");
        print_ablation(&ablation::asap_comparison(seed, l, cap));
        println!("paper's point: prefetching speeds launches but does not fix the GC-swap");
        println!("conflict, so it cannot recover Fleet's caching capacity.");
        header("Extensions — flash vs zram (compressed-RAM) swap");
        print_ablation(&ablation::zram_comparison(seed, l, cap));
        println!("zram removes the 20.3 MB/s flash penalty but eats DRAM for its store.");
    }

    println!();
    println!("done.");
}

fn print_ablation(rows: &[ablation::AblationRow]) {
    let mut t = Table::new(["Variant", "Hot p50 (ms)", "Hot p90 (ms)", "Max cached"]);
    for r in rows {
        t.row([
            r.variant.clone(),
            format!("{:.0}", r.median_hot_ms),
            format!("{:.0}", r.p90_hot_ms),
            r.max_cached.to_string(),
        ]);
    }
    print!("{t}");
}

fn print_capacity(curves: &[caching::CapacityCurve], paper: &str) {
    let mut t = Table::new(["Scheme", "Max cached", "First kill at launch #", "Curve (cached after each launch)"]);
    for c in curves {
        let curve: Vec<String> = c.cached_after_launch.iter().map(|n| n.to_string()).collect();
        t.row([
            c.scheme.clone(),
            c.max_cached.to_string(),
            c.first_kill_at.map(|n| n.to_string()).unwrap_or_else(|| "-".to_string()),
            curve.join(","),
        ]);
    }
    print!("{t}");
    println!("{paper}");
}

