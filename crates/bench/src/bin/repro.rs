//! `repro` — regenerates every table and figure of the Fleet paper.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--seed N] [--export DIR] [--trace DIR] [--drilldown DIR]
//!       [--threads N] [--list] [SELECTOR ...]
//! ```
//!
//! A `SELECTOR` is an experiment id (`fig13`), an alias (`fig15`, `cdf`),
//! a driver module (`hot_launch`), or a glob over those (`fig1*`);
//! comma-separated lists work too (`repro hot_launch,fig11*`). With no
//! selector, `all` runs the full registry. `--list` prints the id table
//! with each experiment's one-line description.
//!
//! Experiments run in parallel (`--threads`, default: the machine's
//! parallelism). Each experiment's RNG seed is derived from `--seed` and
//! its id, so output — including `--export DIR` JSON, one file per
//! artifact — is bit-identical whatever the thread count.
//!
//! `--trace DIR` profiles each selected experiment: it runs sequentially
//! on the main thread under an installed observability pipeline and writes
//! `<id>.trace.json` (Chrome trace-event JSON; load it at
//! <https://ui.perfetto.dev>) plus `<id>.metrics.json` (counters, latency
//! histograms, time series) per experiment. Each trace is schema-validated
//! before it is written; a validation failure fails the run. Population
//! cohorts drop to one inline worker while a pipeline is installed, so
//! their traces are never silently empty.
//!
//! `--drilldown DIR` hands telemetry-style experiments (`fleet_telemetry`)
//! a directory for outlier drill-down artifacts: the top-K outlier
//! device-days are re-simulated standalone into `DIR/<id>/` as
//! `outlier_<n>.row.json` plus, in obs-enabled builds, a validated
//! `outlier_<n>.trace.json` and `outlier_<n>.metrics.json`.
//!
//! Each section prints the simulator's measurement next to the paper's
//! reported value. Absolute numbers are not expected to match (the
//! substrate is a simulator, not a Pixel 3); the *shape* — who wins, by
//! roughly what factor, where crossovers fall — is the reproduction target.
//! EXPERIMENTS.md records a snapshot of this output with commentary.

use fleet::experiment::export::ExportRecord;
use fleet::experiment::harness;
use fleet_metrics::Table;

struct Opts {
    quick: bool,
    seed: u64,
    what: Vec<String>,
    export: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    drilldown: Option<std::path::PathBuf>,
    threads: usize,
    list: bool,
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: repro [--quick] [--seed N] [--export DIR] [--trace DIR] [--drilldown DIR] \
         [--threads N] [--list] [SELECTOR ...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        seed: 0xF1EE7,
        what: Vec::new(),
        export: None,
        trace: None,
        drilldown: None,
        threads: default_threads(),
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--seed needs a number"));
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage_error("--threads needs a positive number"));
            }
            "--export" => {
                let dir = args.next().unwrap_or_else(|| usage_error("--export needs a directory"));
                opts.export = Some(std::path::PathBuf::from(dir));
            }
            "--trace" => {
                let dir = args.next().unwrap_or_else(|| usage_error("--trace needs a directory"));
                opts.trace = Some(std::path::PathBuf::from(dir));
            }
            "--drilldown" => {
                let dir =
                    args.next().unwrap_or_else(|| usage_error("--drilldown needs a directory"));
                opts.drilldown = Some(std::path::PathBuf::from(dir));
            }
            other if other.starts_with('-') => usage_error(&format!("unknown flag `{other}`")),
            other => {
                opts.what.extend(other.split(',').filter(|s| !s.is_empty()).map(|s| s.to_string()))
            }
        }
    }
    if opts.what.is_empty() {
        opts.what.push("all".to_string());
    }
    opts
}

fn print_registry() {
    let mut t = Table::new(["Id", "Aliases", "Title"]);
    for exp in harness::REGISTRY {
        t.row([exp.id().to_string(), exp.aliases().join(", "), exp.title().to_string()]);
        t.row([String::new(), String::new(), format!("  {}", exp.description())]);
    }
    print!("{t}");
}

/// Runs `selected` sequentially on this thread under an installed
/// observability pipeline (and, with the `audit` feature, an audit
/// pipeline), writing a validated `<id>.trace.json` and `<id>.metrics.json`
/// per experiment into `dir`.
fn run_traced(
    selected: &[&'static dyn harness::Experiment],
    opts: &Opts,
    dir: &std::path::Path,
) -> Vec<harness::RunReport> {
    use std::time::Instant;
    let mut reports = Vec::new();
    for exp in selected {
        let pipeline = fleet::obs::shared_pipeline();
        #[cfg(feature = "audit")]
        let audit_pipeline = fleet::audit::shared_pipeline();
        let start = Instant::now();
        let result = {
            let _obs = fleet::obs::install(pipeline.clone());
            #[cfg(feature = "audit")]
            let _audit = fleet::audit::install(audit_pipeline.clone());
            let ctx = harness::ExperimentCtx {
                seed: harness::derive_seed(opts.seed, exp.id()),
                quick: opts.quick,
                drilldown: opts.drilldown.as_ref().map(|d| d.join(exp.id())),
            };
            exp.run(&ctx)
        };
        let elapsed = start.elapsed();
        eprintln!("done {:<18} ({:.1}s, traced)", exp.id(), elapsed.as_secs_f64());
        let result = result.and_then(|output| {
            let p = pipeline.lock().expect("obs pipeline poisoned");
            let trace = p.trace_json();
            let metrics = p.metrics_json();
            drop(p);
            let summary = fleet::obs::validate_chrome_trace(&trace).map_err(|e| {
                fleet::FleetError::InvalidConfig(format!("{}: invalid trace: {e}", exp.id()))
            })?;
            let trace_path = dir.join(format!("{}.trace.json", exp.id()));
            let metrics_path = dir.join(format!("{}.metrics.json", exp.id()));
            std::fs::write(&trace_path, &trace)
                .and_then(|()| std::fs::write(&metrics_path, &metrics))
                .map_err(|e| {
                    fleet::FleetError::InvalidConfig(format!("{}: write failed: {e}", exp.id()))
                })?;
            println!(
                "[traced {} — {} spans on {} tracks, {}]",
                exp.id(),
                summary.spans,
                summary.tracks,
                trace_path.display()
            );
            Ok(output)
        });
        reports.push(harness::RunReport { id: exp.id(), title: exp.title(), result, elapsed });
    }
    reports
}

fn main() {
    let opts = parse_args();
    if opts.list {
        print_registry();
        return;
    }

    let selected = match harness::select(&opts.what) {
        Ok(selected) => selected,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("run `repro --list` for the experiment table");
            std::process::exit(2);
        }
    };

    if let Some(dir) = &opts.export {
        if let Err(e) = std::fs::create_dir_all(dir) {
            usage_error(&format!("cannot create export dir {}: {e}", dir.display()));
        }
    }
    if let Some(dir) = &opts.trace {
        if let Err(e) = std::fs::create_dir_all(dir) {
            usage_error(&format!("cannot create trace dir {}: {e}", dir.display()));
        }
    }
    if let Some(dir) = &opts.drilldown {
        if let Err(e) = std::fs::create_dir_all(dir) {
            usage_error(&format!("cannot create drilldown dir {}: {e}", dir.display()));
        }
    }

    // Tracing installs a thread-local pipeline, so traced runs go inline on
    // this thread; the parallel pool keeps its run_experiments determinism
    // contract either way (seeds derive from --seed and the id alone).
    let reports = match &opts.trace {
        Some(dir) => run_traced(&selected, &opts, dir),
        None => harness::run_experiments(
            &selected,
            opts.seed,
            opts.quick,
            opts.threads,
            true,
            opts.drilldown.as_deref(),
        ),
    };

    let mut failed = false;
    for report in &reports {
        match &report.result {
            Ok(output) => {
                print!("{}", output.render());
                if let Some(dir) = &opts.export {
                    for artifact in &output.exports {
                        let record =
                            ExportRecord::new(&artifact.id, &artifact.paper, &artifact.data);
                        match record.write_to_dir(dir) {
                            Ok(path) => println!("[exported {}]", path.display()),
                            Err(e) => {
                                eprintln!("export of {} failed: {e}", artifact.id);
                                failed = true;
                            }
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("{} failed: {e}", report.id);
                failed = true;
            }
        }
    }

    println!();
    println!("done.");
    if failed {
        std::process::exit(1);
    }
}
