//! Shared helpers for the `repro` binary and the Criterion benches.
//!
//! The real content of this crate is in `src/bin/repro.rs` (the per-figure
//! reproduction harness) and `benches/` (Criterion groups); this library
//! only re-exports the experiment API for them.

pub use fleet::experiment;
