//! Kernel-model micro-benchmarks: the swap machinery behind Figures 3/13.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fleet_kernel::{AccessKind, Advice, MemoryManager, MmConfig, Pid, SwapConfig, PAGE_SIZE};

fn loaded_mm() -> MemoryManager {
    let mut mm = MemoryManager::new(MmConfig {
        dram_bytes: 32 * 1024 * 1024,
        swap: SwapConfig { capacity_bytes: 32 * 1024 * 1024, ..SwapConfig::default() },
        ..MmConfig::default()
    });
    for pid in 1..=8u32 {
        mm.map_range(Pid(pid), 0, 6 * 1024 * 1024).expect("fits with eviction");
    }
    mm
}

fn bench_mm(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.bench_function("access_resident_page", |b| {
        let mut mm = loaded_mm();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            mm.access(Pid(8), i * PAGE_SIZE, 64, AccessKind::Mutator)
        })
    });
    group.bench_function("fault_swapped_page", |b| {
        b.iter_batched_ref(
            || {
                let mut mm = loaded_mm();
                mm.madvise(Pid(1), 0, 2 * 1024 * 1024, Advice::ColdRuntime);
                mm
            },
            |mm| mm.access(Pid(1), 0, 2 * 1024 * 1024, AccessKind::Launch),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("madvise_cold_2MiB", |b| {
        b.iter_batched_ref(
            loaded_mm,
            |mm| mm.madvise(Pid(2), 0, 2 * 1024 * 1024, Advice::ColdRuntime),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("madvise_hot_2MiB", |b| {
        let mut mm = loaded_mm();
        b.iter(|| mm.madvise(Pid(3), 0, 2 * 1024 * 1024, Advice::HotRuntime))
    });
    group.bench_function("kswapd_reclaim", |b| {
        b.iter_batched_ref(
            || {
                let mut mm = MemoryManager::new(MmConfig {
                    dram_bytes: 8 * 1024 * 1024,
                    swap: SwapConfig { capacity_bytes: 32 * 1024 * 1024, ..SwapConfig::default() },
                    low_watermark_frames: 512,
                    high_watermark_frames: 1024,
                    ..MmConfig::default()
                });
                mm.map_range(Pid(1), 0, 8 * 1024 * 1024 - 64 * PAGE_SIZE).expect("fits");
                mm
            },
            |mm| mm.kswapd(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_mm);
criterion_main!(benches);
