//! Per-figure benchmarks: each benchmark exercises the code path that
//! regenerates one of the paper's tables or figures, at miniature scale.
//! (The full regeneration with paper-vs-measured output is the `repro`
//! binary; these benches track the cost of each experiment's machinery.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fleet::experiment::{object_sizes, reaccess, scenario::AppPool, tables};
use fleet::{Device, DeviceConfig, SchemeKind};
use fleet_apps::{profile_by_name, synthetic_app};

fn pool_apps() -> Vec<String> {
    ["Twitter", "Facebook", "Youtube", "Spotify", "Chrome", "LinkedIn"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn bench_tables(c: &mut Criterion) {
    // Tables 1–3: configuration rendering.
    c.bench_function("table1_2_3_render", |b| {
        b.iter(|| {
            (
                tables::table1().to_string(),
                tables::table2().to_string(),
                tables::table3().to_string(),
            )
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    // Figure 2 path: one hot launch on an idle device.
    let mut group = c.benchmark_group("fig2_hot_vs_cold");
    group.sample_size(10);
    group.bench_function("hot_launch_idle", |b| {
        b.iter_batched_ref(
            || {
                let mut device = Device::new(DeviceConfig::pixel3(SchemeKind::Android));
                let (pid, _) = device.launch_cold(&profile_by_name("Twitter").unwrap());
                device.launch_cold(&profile_by_name("Telegram").unwrap());
                device.run(3);
                (device, pid)
            },
            |(device, pid)| device.switch_to(*pid),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    // Figures 6 and 7: pure analyses.
    let mut group = c.benchmark_group("fig6_fig7_analysis");
    group.sample_size(10);
    group.bench_function("fig6b_depth_sweep", |b| b.iter(|| reaccess::fig6b(1, 8)));
    group.bench_function("fig7_size_cdfs", |b| b.iter(|| object_sizes::fig7(1, 10_000)));
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    // Figure 11 path: one capacity step (launch + settle) on a loaded device.
    let mut group = c.benchmark_group("fig11_capacity");
    group.sample_size(10);
    for scheme in [SchemeKind::Android, SchemeKind::Fleet] {
        group.bench_function(format!("capacity_step_{scheme}"), |b| {
            b.iter_batched_ref(
                || {
                    let mut device = Device::new(DeviceConfig::pixel3(scheme));
                    let app = synthetic_app(2048, 180);
                    for _ in 0..6 {
                        device.launch_cold(&app);
                        device.run(2);
                    }
                    device
                },
                |device| {
                    device.launch_cold(&synthetic_app(2048, 180));
                    device.run(2);
                    device.cached_apps()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    // Figure 13 path: one pressured hot launch per scheme.
    let mut group = c.benchmark_group("fig13_hot_launch_pressure");
    group.sample_size(10);
    for scheme in [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet] {
        group.bench_function(format!("pressured_launch_{scheme}"), |b| {
            b.iter_batched_ref(
                || AppPool::under_pressure(scheme, &pool_apps(), 99).expect("valid pool"),
                |pool| {
                    pool.launch("Spotify").expect("known app");
                    pool.device_mut().run(5);
                    pool.launch("Twitter").expect("known app")
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    // Figure 12 path: one background GC, Android vs Fleet.
    let mut group = c.benchmark_group("fig12_bg_gc");
    group.sample_size(10);
    for scheme in [SchemeKind::Android, SchemeKind::Fleet] {
        group.bench_function(format!("bg_gc_{scheme}"), |b| {
            b.iter_batched_ref(
                || {
                    let mut device = Device::new(DeviceConfig::pixel3(scheme));
                    let (pid, _) = device.launch_cold(&profile_by_name("Twitch").unwrap());
                    device.launch_cold(&profile_by_name("Telegram").unwrap());
                    device.run(15);
                    (device, pid)
                },
                |(device, pid)| device.run_gc(*pid),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fig14(c: &mut Criterion) {
    // Figure 14 path: one second of frame rendering.
    let mut group = c.benchmark_group("fig14_frames");
    group.sample_size(10);
    group.bench_function("one_second_of_frames", |b| {
        b.iter_batched_ref(
            || {
                let mut pool = AppPool::under_pressure(SchemeKind::Fleet, &pool_apps(), 5)
                    .expect("valid pool");
                let (pid, _) = pool.ensure("Twitter").expect("known app");
                if pool.device().foreground() != Some(pid) {
                    pool.device_mut().switch_to(pid);
                }
                (pool, pid)
            },
            |(pool, pid)| pool.device_mut().run_frames(*pid, 1),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig2,
    bench_fig6_fig7,
    bench_fig11,
    bench_fig13,
    bench_fig12,
    bench_fig14
);
criterion_main!(benches);
