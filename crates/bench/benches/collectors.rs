//! Collector micro-benchmarks: the GC engines behind Figures 12a and 13.
//!
//! Measures one collection over a standard warmed heap for each collector.
//! The interesting comparison is BGC vs the full GC: BGC's work should be
//! roughly an order of magnitude smaller on a backgrounded app, which is
//! exactly the Figure 12a effect at the engine level.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fleet_apps::{profile_by_name, AppBehavior};
use fleet_gc::{
    BackgroundObjectGc, Collector, FullCopyingGc, GcCostModel, GroupingGc, MarvinGc, MinorGc,
    NoTouch,
};
use fleet_heap::{AllocContext, Heap, HeapConfig};
use fleet_sim::SimRng;
use std::collections::HashSet;

/// A Twitter-shaped heap, backgrounded with a little BGO churn on top.
fn backgrounded_heap() -> Heap {
    let profile = profile_by_name("Twitter").expect("catalog app");
    let mut heap = Heap::new(HeapConfig::default());
    let mut app = AppBehavior::new(profile, SimRng::seed_from(7));
    app.build_initial_graph(&mut heap, 4 * 1024 * 1024);
    heap.retire_alloc_targets();
    heap.clear_newly_allocated_flags();
    app.enter_background(&heap);
    heap.set_context(AllocContext::Background);
    app.background_step(&mut heap, 30.0);
    heap
}

fn bench_collectors(c: &mut Criterion) {
    let heap = backgrounded_heap();
    let mut group = c.benchmark_group("collectors");
    group.sample_size(20);

    group.bench_function("full_copying_gc", |b| {
        b.iter_batched_ref(
            || heap.clone(),
            |h| FullCopyingGc::new(GcCostModel::default()).collect(h, &mut NoTouch),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("minor_gc", |b| {
        b.iter_batched_ref(
            || heap.clone(),
            |h| MinorGc::new(GcCostModel::default()).collect(h, &mut NoTouch),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("background_object_gc", |b| {
        b.iter_batched_ref(
            || heap.clone(),
            |h| BackgroundObjectGc::new(GcCostModel::default()).collect(h, &mut NoTouch),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("marvin_bookmarking_gc", |b| {
        b.iter_batched_ref(
            || heap.clone(),
            |h| MarvinGc::new(GcCostModel::default(), 1024).collect(h, &mut NoTouch),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("rgs_grouping_gc", |b| {
        b.iter_batched_ref(
            || heap.clone(),
            |h| {
                GroupingGc::new(GcCostModel::default(), 2, HashSet::new())
                    .collect_grouping(h, &mut NoTouch)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_heap_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    group.bench_function("alloc_64b", |b| {
        b.iter_batched_ref(
            || Heap::new(HeapConfig::default()),
            |h| {
                for _ in 0..1000 {
                    h.alloc(64);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("depth_map_4MiB_graph", |b| {
        let heap = backgrounded_heap();
        b.iter(|| fleet_heap::depth_map(&heap, Some(2)))
    });
    group.finish();
}

criterion_group!(benches, bench_collectors, bench_heap_ops);
criterion_main!(benches);
