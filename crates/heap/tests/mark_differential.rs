//! Differential tests: dense [`ObjectMarks`] bitmaps against the `HashSet`
//! visited sets they replaced in the tracing collectors.
//!
//! The same depth-first traversal runs twice over a random object graph —
//! once deduplicating through a `HashSet<ObjectId>`, once through an
//! `ObjectMarks` bitmap — and must produce the identical visit order and
//! the identical final mark set. Random insert/remove scripts additionally
//! pin the bitmap's set semantics to the `HashSet` reference.

use fleet_heap::{Heap, HeapConfig, ObjectId, ObjectMarks};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
struct GraphSpec {
    sizes: Vec<u32>,
    edges: Vec<(usize, usize)>,
    roots: Vec<usize>,
}

fn graph_strategy(max_objects: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_objects).prop_flat_map(|n| {
        let sizes = proptest::collection::vec(16u32..512, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..4 * n);
        let roots = proptest::collection::vec(0..n, 1..4);
        (sizes, edges, roots).prop_map(|(sizes, edges, roots)| GraphSpec { sizes, edges, roots })
    })
}

fn build(spec: &GraphSpec) -> (Heap, Vec<ObjectId>) {
    let mut heap = Heap::new(HeapConfig::default());
    let ids: Vec<ObjectId> = spec.sizes.iter().map(|&s| heap.alloc(s)).collect();
    for &(from, to) in &spec.edges {
        heap.add_ref(ids[from], ids[to]);
    }
    for &r in &spec.roots {
        heap.add_root(ids[r]);
    }
    (heap, ids)
}

/// DFS from the roots, deduplicating through `seen` (a closure pair so the
/// same traversal body serves both set representations).
fn trace(heap: &Heap, mut mark: impl FnMut(ObjectId) -> bool) -> Vec<ObjectId> {
    let mut order = Vec::new();
    let mut stack: Vec<ObjectId> = Vec::new();
    for &root in heap.roots() {
        if heap.contains(root) && mark(root) {
            order.push(root);
            stack.push(root);
        }
    }
    while let Some(obj) = stack.pop() {
        for &next in heap.object(obj).refs() {
            if heap.contains(next) && mark(next) {
                order.push(next);
                stack.push(next);
            }
        }
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitmap_trace_matches_hashset_trace(spec in graph_strategy(120)) {
        let (heap, ids) = build(&spec);

        let mut set: HashSet<ObjectId> = HashSet::new();
        let set_order = trace(&heap, |id| set.insert(id));

        let mut marks = ObjectMarks::for_heap(&heap);
        let mark_order = trace(&heap, |id| marks.insert(id));

        // Same traversal, same dedup answers → identical visit order.
        prop_assert_eq!(&set_order, &mark_order);
        prop_assert_eq!(set.len(), marks.len());
        for &id in &ids {
            prop_assert_eq!(set.contains(&id), marks.contains(id));
        }
        // The bitmap iterates ascending; the HashSet sorted must agree.
        let mut sorted: Vec<ObjectId> = set.into_iter().collect();
        sorted.sort();
        prop_assert_eq!(sorted, marks.iter().collect::<Vec<_>>());
    }

    /// Random insert/remove scripts: the bitmap is a drop-in `HashSet`.
    #[test]
    fn bitmap_set_semantics_match_hashset(
        ops in proptest::collection::vec((any::<bool>(), 0usize..64), 1..200),
    ) {
        let mut heap = Heap::new(HeapConfig::default());
        let ids: Vec<ObjectId> = (0..64).map(|_| heap.alloc(16)).collect();

        let mut set: HashSet<ObjectId> = HashSet::new();
        let mut marks = ObjectMarks::for_heap(&heap);
        for (insert, i) in ops {
            let id = ids[i];
            if insert {
                prop_assert_eq!(set.insert(id), marks.insert(id));
            } else {
                prop_assert_eq!(set.remove(&id), marks.remove(id));
            }
            prop_assert_eq!(set.len(), marks.len());
            prop_assert_eq!(set.is_empty(), marks.is_empty());
        }
    }
}
