//! Property tests on the heap's core data structures.

use fleet_heap::{AllocContext, CardTable, Heap, HeapConfig, ObjectId};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bump allocation never overlaps: every object's `[addr, addr+size)`
    /// is disjoint from every other live object's span.
    #[test]
    fn allocations_never_overlap(sizes in proptest::collection::vec(1u32..8192, 1..200)) {
        let mut heap = Heap::new(HeapConfig::default());
        let ids: Vec<ObjectId> = sizes.iter().map(|&s| heap.alloc(s)).collect();
        let mut spans: Vec<(u64, u64)> = ids
            .iter()
            .map(|&id| {
                let addr = heap.address(id);
                (addr, addr + heap.object(id).size() as u64)
            })
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    /// The card covering any address inside an object is dirtied by a write
    /// to that object.
    #[test]
    fn write_barrier_covers_the_whole_object(
        sizes in proptest::collection::vec(16u32..4096, 2..50),
        victim in 0usize..49,
    ) {
        let mut heap = Heap::new(HeapConfig::default());
        let ids: Vec<ObjectId> = sizes.iter().map(|&s| heap.alloc(s)).collect();
        let victim = ids[victim % ids.len()];
        let target = ids[0];
        heap.cards_mut().clear();
        heap.add_ref(victim, target);
        let addr = heap.address(victim);
        let size = heap.object(victim).size() as u64;
        for offset in [0, size / 2, size - 1] {
            prop_assert!(heap.cards().is_dirty(addr + offset));
        }
    }

    /// Card↔address translation round-trips for arbitrary shifts and
    /// addresses.
    #[test]
    fn card_round_trip(shift in 1u32..20, addrs in proptest::collection::vec(0u64..(1 << 34), 1..50)) {
        let table = CardTable::new(shift);
        for addr in addrs {
            let card = table.card_of(addr);
            prop_assert!(table.card_range(card).contains(&addr));
            prop_assert_eq!(table.card_of(table.card_base(card)), card);
        }
    }

    /// Live-byte accounting matches the sum of live object sizes through
    /// arbitrary alloc/free interleavings.
    #[test]
    fn live_bytes_accounting(script in proptest::collection::vec((any::<bool>(), 1u32..2048), 1..300)) {
        let mut heap = Heap::new(HeapConfig::default());
        let mut live: HashMap<ObjectId, u32> = HashMap::new();
        for (free, size) in script {
            if free && !live.is_empty() {
                let &id = live.keys().next().expect("non-empty");
                live.remove(&id);
                heap.free_object(id);
            } else {
                let id = heap.alloc(size);
                live.insert(id, size);
            }
            let expect: u64 = live.values().map(|&s| s as u64).sum();
            prop_assert_eq!(heap.live_bytes(), expect);
            prop_assert_eq!(heap.live_objects(), live.len() as u64);
            prop_assert!(heap.used_bytes() >= heap.live_bytes());
        }
    }

    /// FGO/BGO separation: objects allocated in different contexts never
    /// share a region.
    #[test]
    fn contexts_never_share_regions(script in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut heap = Heap::new(HeapConfig::default());
        let mut by_region: HashMap<fleet_heap::RegionId, AllocContext> = HashMap::new();
        for bg in script {
            let ctx = if bg { AllocContext::Background } else { AllocContext::Foreground };
            heap.set_context(ctx);
            let id = heap.alloc(64);
            let region = heap.object(id).region();
            if let Some(&prev) = by_region.get(&region) {
                prop_assert_eq!(prev, ctx, "region {} mixes contexts", region);
            } else {
                by_region.insert(region, ctx);
            }
        }
    }
}
