//! Heap configuration (Table 2 of the paper).

use serde::{Deserialize, Serialize};

/// Size of an OS page in bytes (4 KiB, §4.3).
pub const PAGE_SIZE: u64 = 4096;

/// Tunables of the heap model. Defaults follow Table 2 of the paper.
///
/// # Examples
///
/// ```
/// use fleet_heap::HeapConfig;
///
/// let cfg = HeapConfig::default();
/// assert_eq!(cfg.region_size, 256 * 1024);
/// assert_eq!(cfg.card_shift, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeapConfig {
    /// Region size in bytes (Table 2: 256 KiB).
    pub region_size: u32,
    /// `CARD_SHIFT` for card-address conversion (Table 2: 10, i.e. 1 KiB
    /// of heap per card byte).
    pub card_shift: u32,
    /// Initial heap limit in bytes before the first growth.
    pub initial_limit: u64,
    /// Heap-limit growth factor applied after a GC while the app is in the
    /// *foreground*: `limit = live_bytes × factor`.
    pub growth_factor_foreground: f64,
    /// Growth factor applied after a GC while the app is in the
    /// *background*. §4.2: "When an app is in the background, the threshold
    /// is set to a value close to the memory usage" — hence the small 1.1
    /// default; §7.4 sweeps this between 1.1 and 2.0.
    pub growth_factor_background: f64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            region_size: 256 * 1024,
            card_shift: 10,
            initial_limit: 8 * 1024 * 1024,
            growth_factor_foreground: 2.0,
            growth_factor_background: 1.1,
        }
    }
}

impl HeapConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: the region
    /// size must be a positive multiple of the page size, the card shift
    /// must keep a card no larger than a region, and growth factors must be
    /// at least 1.
    pub fn validate(&self) -> Result<(), String> {
        if self.region_size == 0 || !(self.region_size as u64).is_multiple_of(PAGE_SIZE) {
            return Err(format!(
                "region_size {} must be a positive multiple of {PAGE_SIZE}",
                self.region_size
            ));
        }
        if self.card_shift == 0 || (1u64 << self.card_shift) > self.region_size as u64 {
            return Err(format!("card_shift {} must address at most one region", self.card_shift));
        }
        if self.growth_factor_foreground < 1.0 || self.growth_factor_background < 1.0 {
            return Err("growth factors must be >= 1.0".to_string());
        }
        if self.initial_limit < self.region_size as u64 {
            return Err("initial_limit must hold at least one region".to_string());
        }
        Ok(())
    }

    /// Bytes of heap covered by one card-table byte.
    pub fn card_size(&self) -> u64 {
        1 << self.card_shift
    }

    /// Number of pages per region.
    pub fn pages_per_region(&self) -> u64 {
        self.region_size as u64 / PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let cfg = HeapConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.card_size(), 1024);
        assert_eq!(cfg.pages_per_region(), 64);
        assert_eq!(cfg.growth_factor_background, 1.1);
    }

    #[test]
    fn rejects_unaligned_region() {
        let cfg = HeapConfig { region_size: 1000, ..HeapConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_oversized_card() {
        let cfg = HeapConfig { card_shift: 30, ..HeapConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_shrinking_growth() {
        let cfg = HeapConfig { growth_factor_background: 0.5, ..HeapConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_tiny_limit() {
        let cfg = HeapConfig { initial_limit: 1, ..HeapConfig::default() };
        assert!(cfg.validate().is_err());
    }
}
