//! Dense mark bitmaps over arena slot indices.
//!
//! Both [`ObjectId`](crate::ObjectId) and [`RegionId`](crate::RegionId) are
//! dense arena indices (slots are never renumbered), so a flat bitmap of one
//! bit per slot replaces the `HashSet` visited/marked sets the tracing
//! collectors used to carry: marking becomes a shift, a mask and an OR on a
//! cache-resident word array — the same layout ART's region-space mark
//! bitmaps use — instead of a hash, a probe sequence and a possible
//! reallocation per object.
//!
//! [`SlotBitmap`] is the untyped engine; [`ObjectMarks`] and [`RegionSet`]
//! are the thin typed views the collectors use.

use crate::heap::Heap;
use crate::object::ObjectId;
use crate::region::RegionId;

const WORD_BITS: usize = 64;

/// A growable bitmap over `u32` slot indices with a live popcount.
///
/// # Examples
///
/// ```
/// use fleet_heap::SlotBitmap;
///
/// let mut marks = SlotBitmap::with_capacity(128);
/// assert!(marks.insert(7));
/// assert!(!marks.insert(7)); // already set
/// assert!(marks.contains(7));
/// assert_eq!(marks.len(), 1);
/// assert_eq!(marks.iter().collect::<Vec<_>>(), vec![7]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SlotBitmap {
    /// Creates an empty bitmap sized for `slots` indices (it still grows on
    /// demand if a larger index is inserted).
    pub fn with_capacity(slots: usize) -> Self {
        SlotBitmap { words: vec![0; slots.div_ceil(WORD_BITS)], len: 0 }
    }

    /// Sets `slot`; returns `true` if it was not set before (the idiom that
    /// replaces `HashSet::insert` in trace loops).
    pub fn insert(&mut self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / WORD_BITS, slot as usize % WORD_BITS);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.len += 1;
        true
    }

    /// Clears `slot`; returns `true` if it was set.
    pub fn remove(&mut self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / WORD_BITS, slot as usize % WORD_BITS);
        let Some(w) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        if *w & mask == 0 {
            return false;
        }
        *w &= !mask;
        self.len -= 1;
        true
    }

    /// True if `slot` is set.
    pub fn contains(&self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / WORD_BITS, slot as usize % WORD_BITS);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of set slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears every slot, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates the set slots in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some((wi * WORD_BITS) as u32 + bit)
            })
        })
    }
}

/// A mark bitmap over [`ObjectId`]s — the collectors' visited/live set.
///
/// # Examples
///
/// ```
/// use fleet_heap::{Heap, HeapConfig, ObjectMarks};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let a = heap.alloc(32);
/// let mut live = ObjectMarks::for_heap(&heap);
/// assert!(live.insert(a));
/// assert!(!live.insert(a));
/// assert!(live.contains(a));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectMarks(SlotBitmap);

impl ObjectMarks {
    /// An empty mark set sized to the heap's current arena.
    pub fn for_heap(heap: &Heap) -> Self {
        ObjectMarks(SlotBitmap::with_capacity(heap.object_slots()))
    }

    /// Marks `id`; returns `true` if it was unmarked before.
    pub fn insert(&mut self, id: ObjectId) -> bool {
        self.0.insert(id.0)
    }

    /// Unmarks `id`; returns `true` if it was marked.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        self.0.remove(id.0)
    }

    /// True if `id` is marked.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.0.contains(id.0)
    }

    /// Number of marked objects.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates marked objects in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.0.iter().map(ObjectId)
    }
}

/// A membership bitmap over [`RegionId`]s (young set, background set, …).
///
/// # Examples
///
/// ```
/// use fleet_heap::{Heap, HeapConfig, RegionSet};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// heap.alloc(32);
/// let mut young: RegionSet =
///     heap.regions().filter(|r| r.newly_allocated()).map(|r| r.id()).collect();
/// let some_region = heap.region_ids()[0];
/// assert!(young.contains(some_region));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegionSet(SlotBitmap);

impl RegionSet {
    /// An empty set sized to the heap's current region table.
    pub fn for_heap(heap: &Heap) -> Self {
        RegionSet(SlotBitmap::with_capacity(heap.region_slots()))
    }

    /// Adds `id`; returns `true` if it was absent before.
    pub fn insert(&mut self, id: RegionId) -> bool {
        self.0.insert(id.0)
    }

    /// True if `id` is in the set.
    pub fn contains(&self, id: RegionId) -> bool {
        self.0.contains(id.0)
    }

    /// Number of regions in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<RegionId> for RegionSet {
    fn from_iter<I: IntoIterator<Item = RegionId>>(iter: I) -> Self {
        let mut set = RegionSet::default();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl FromIterator<ObjectId> for ObjectMarks {
    fn from_iter<I: IntoIterator<Item = ObjectId>>(iter: I) -> Self {
        let mut set = ObjectMarks::default();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = SlotBitmap::with_capacity(10);
        assert!(!b.contains(3));
        assert!(b.insert(3));
        assert!(!b.insert(3));
        assert!(b.contains(3));
        assert_eq!(b.len(), 1);
        assert!(b.remove(3));
        assert!(!b.remove(3));
        assert!(b.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut b = SlotBitmap::with_capacity(1);
        assert!(b.insert(1_000));
        assert!(b.contains(1_000));
        assert!(!b.contains(999));
        assert!(!b.contains(1_000_000));
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let mut b = SlotBitmap::default();
        for &s in &[190u32, 3, 64, 63, 0, 127] {
            b.insert(s);
        }
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 3, 63, 64, 127, 190]);
    }

    #[test]
    fn clear_keeps_capacity_resets_count() {
        let mut b = SlotBitmap::with_capacity(256);
        b.insert(200);
        b.clear();
        assert!(b.is_empty());
        assert!(!b.contains(200));
    }

    #[test]
    fn word_boundary_slots() {
        let mut b = SlotBitmap::default();
        for s in [63u32, 64, 65, 127, 128] {
            assert!(b.insert(s));
            assert!(b.contains(s));
        }
        assert_eq!(b.len(), 5);
    }
}
