//! The card table used by Fleet's Background-object GC (§5.2).
//!
//! A card table is "an array where each byte represents some objects
//! corresponding to a range of continuous addresses" (§2.2). Fleet adds a
//! dedicated card table that the write barrier dirties whenever a
//! *foreground* object is written; scanning the dirty cards at GC start
//! yields every FGO that might have gained a reference to a BGO, without
//! touching the rest of the (possibly swapped-out) foreground heap.

use serde::{Deserialize, Serialize};

/// A byte-per-card dirty table over the heap address space.
///
/// `CARD_SHIFT` is the paper's card-address conversion constant (Table 2:
/// 10, i.e. one card byte covers 1 KiB of heap). The table grows lazily as
/// the address space grows.
///
/// # Examples
///
/// ```
/// use fleet_heap::CardTable;
///
/// let mut cards = CardTable::new(10);
/// cards.dirty(2048); // card 2
/// assert!(cards.is_dirty(2048));
/// assert!(!cards.is_dirty(1024));
/// assert_eq!(cards.dirty_cards().collect::<Vec<_>>(), vec![2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CardTable {
    shift: u32,
    cards: Vec<u8>,
    dirty_count: usize,
}

const CLEAN: u8 = 0;
const DIRTY: u8 = 1;

impl CardTable {
    /// Creates an empty card table with the given `CARD_SHIFT`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is 0 or ≥ 32.
    pub fn new(shift: u32) -> Self {
        assert!(shift > 0 && shift < 32, "CARD_SHIFT must be in 1..32");
        CardTable { shift, cards: Vec::new(), dirty_count: 0 }
    }

    /// The configured `CARD_SHIFT`.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Bytes of heap covered by one card.
    pub fn card_size(&self) -> u64 {
        1 << self.shift
    }

    /// The card index covering `addr` — the paper's "shift instruction".
    pub fn card_of(&self, addr: u64) -> usize {
        (addr >> self.shift) as usize
    }

    /// First heap address covered by card `card`.
    pub fn card_base(&self, card: usize) -> u64 {
        (card as u64) << self.shift
    }

    /// The address range covered by card `card`.
    pub fn card_range(&self, card: usize) -> std::ops::Range<u64> {
        let base = self.card_base(card);
        base..base + self.card_size()
    }

    /// Marks the card covering `addr` dirty (the write-barrier slow path).
    pub fn dirty(&mut self, addr: u64) {
        let card = self.card_of(addr);
        if card >= self.cards.len() {
            self.cards.resize(card + 1, CLEAN);
        }
        if self.cards[card] == CLEAN {
            self.cards[card] = DIRTY;
            self.dirty_count += 1;
        }
    }

    /// Marks every card overlapping `[addr, addr + len)` dirty (for objects
    /// spanning card boundaries).
    pub fn dirty_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = self.card_of(addr);
        let last = self.card_of(addr + len - 1);
        for card in first..=last {
            self.dirty(self.card_base(card));
        }
    }

    /// Whether the card covering `addr` is dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        self.cards.get(self.card_of(addr)).copied().unwrap_or(CLEAN) == DIRTY
    }

    /// Number of dirty cards.
    pub fn dirty_len(&self) -> usize {
        self.dirty_count
    }

    /// Iterates over the indices of dirty cards in address order.
    pub fn dirty_cards(&self) -> impl Iterator<Item = usize> + '_ {
        self.cards.iter().enumerate().filter(|&(_, &c)| c == DIRTY).map(|(i, _)| i)
    }

    /// Clears every card (done after a BGC has consumed the dirty set).
    pub fn clear(&mut self) {
        self.cards.fill(CLEAN);
        self.dirty_count = 0;
    }

    /// Memory occupied by the table itself in bytes. §7.3 reports this
    /// overhead: 4 MiB of card table for a 4 GiB heap at `CARD_SHIFT = 10`.
    pub fn footprint_bytes(&self) -> usize {
        self.cards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_address_round_trip() {
        let t = CardTable::new(10);
        assert_eq!(t.card_size(), 1024);
        for addr in [0u64, 1, 1023, 1024, 1025, 10_000_000] {
            let card = t.card_of(addr);
            assert!(t.card_range(card).contains(&addr));
        }
    }

    #[test]
    fn dirty_and_clear() {
        let mut t = CardTable::new(10);
        t.dirty(0);
        t.dirty(100); // same card
        t.dirty(5000);
        assert_eq!(t.dirty_len(), 2);
        assert!(t.is_dirty(512));
        assert!(t.is_dirty(5000));
        assert!(!t.is_dirty(2048));
        t.clear();
        assert_eq!(t.dirty_len(), 0);
        assert!(!t.is_dirty(0));
    }

    #[test]
    fn dirty_range_spans_cards() {
        let mut t = CardTable::new(10);
        t.dirty_range(1000, 2000); // covers cards 0, 1, 2
        assert_eq!(t.dirty_cards().collect::<Vec<_>>(), vec![0, 1, 2]);
        t.clear();
        t.dirty_range(0, 0);
        assert_eq!(t.dirty_len(), 0);
    }

    #[test]
    fn footprint_matches_paper_ratio() {
        // 4 GiB heap at CARD_SHIFT=10 → 4 MiB card table (§7.3).
        let mut t = CardTable::new(10);
        t.dirty(4 * 1024 * 1024 * 1024 - 1);
        assert_eq!(t.footprint_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn unmapped_addresses_are_clean() {
        let t = CardTable::new(12);
        assert!(!t.is_dirty(1 << 40));
        assert_eq!(t.dirty_len(), 0);
    }

    #[test]
    #[should_panic(expected = "CARD_SHIFT")]
    fn zero_shift_panics() {
        CardTable::new(0);
    }
}
