//! Region-based Java-heap model for the Fleet reproduction.
//!
//! This crate models the part of the Android Runtime (ART) heap that the
//! paper's mechanisms live in:
//!
//! * a slab **object arena** with explicit reference edges ([`object`]),
//! * **regions** — 256 KiB segments with bump-pointer allocation, a
//!   *newly-allocated* flag (used to detect FYO) and a *kind* recording
//!   whether the region holds foreground or background objects, or one of
//!   the Launch/WS/Cold groups produced by RGS ([`region`]),
//! * a **card table** with the paper's `CARD_SHIFT = 10` and the write
//!   barrier that dirties a card whenever a foreground object is mutated
//!   ([`card`], §5.2 of the paper),
//! * the **heap** itself: allocation contexts (foreground vs background,
//!   which is what makes an object an FGO or a BGO), roots, a dynamic heap
//!   limit with a configurable growth factor (§7.4), and the copy machinery
//!   collectors use ([`heap`]),
//! * **graph utilities**: BFS depth maps from the roots (the "NRO" metric)
//!   and reachability ([`graph`]).
//!
//! The heap knows nothing about pages being resident or swapped — that is
//! the kernel crate's job. It reports address-space changes through
//! [`HeapEvent`]s so the embedding layer can keep the kernel's page tables in
//! sync.
//!
//! # Examples
//!
//! ```
//! use fleet_heap::{AllocContext, Heap, HeapConfig};
//!
//! let mut heap = Heap::new(HeapConfig::default());
//! let root = heap.alloc(64);
//! heap.add_root(root);
//! let child = heap.alloc(32);
//! heap.add_ref(root, child);
//! assert_eq!(heap.object(root).refs(), &[child]);
//! assert_eq!(heap.object(root).context(), AllocContext::Foreground);
//! ```

#![warn(missing_docs)]

pub mod bitmap;
pub mod card;
pub mod config;
pub mod graph;
pub mod heap;
pub mod object;
pub mod region;

pub use bitmap::{ObjectMarks, RegionSet, SlotBitmap};
pub use card::CardTable;
pub use config::{HeapConfig, PAGE_SIZE};
pub use graph::{depth_map, reachable_set};
pub use heap::{Heap, HeapEvent, HeapStats};
pub use object::{AllocContext, Object, ObjectClass, ObjectId};
pub use region::{Region, RegionId, RegionKind};
