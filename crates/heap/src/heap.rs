//! The heap: arena + regions + roots + allocation contexts + card table.
//!
//! This is the mutable state every collector in `fleet-gc` operates on. The
//! design keeps the paper's mechanics observable:
//!
//! * every object knows the app state it was allocated under (FGO vs BGO),
//! * regions carry the *kind* and *newly-allocated* metadata Fleet keys on,
//! * mutating a foreground object dirties the BGC card table via the write
//!   barrier (§5.2),
//! * the heap limit grows by a configurable factor after each GC, with
//!   separate foreground/background factors (§4.2, §7.4).
//!
//! Address-space changes (regions mapped/freed) are queued as [`HeapEvent`]s
//! for the embedding layer to forward to the kernel model.

use crate::card::CardTable;
use crate::config::{HeapConfig, PAGE_SIZE};
use crate::object::{AllocContext, Object, ObjectClass, ObjectId};
use crate::region::{Region, RegionId, RegionKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Emits a flight-recorder event stamped with the owning process id;
/// compiled to nothing without the `audit` feature.
#[cfg(feature = "audit")]
macro_rules! audit {
    ($self:ident, |$pid:ident| $ev:expr) => {
        $self.audit.push(|$pid| $ev)
    };
}
#[cfg(not(feature = "audit"))]
macro_rules! audit {
    ($($t:tt)*) => {};
}

/// An address-space change the kernel model must hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeapEvent {
    /// A region was mapped at `[base, base + len)`.
    RegionMapped {
        /// First byte address of the region.
        base: u64,
        /// Region length in bytes.
        len: u64,
    },
    /// The region at `[base, base + len)` was released.
    RegionFreed {
        /// First byte address of the region.
        base: u64,
        /// Region length in bytes.
        len: u64,
    },
}

/// A point-in-time snapshot of heap occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Bytes bump-allocated in live regions (includes garbage).
    pub used_bytes: u64,
    /// Bytes of live objects.
    pub live_bytes: u64,
    /// Live object count.
    pub live_objects: u64,
    /// Mapped region count.
    pub regions: u64,
    /// Live bytes in foreground objects.
    pub fgo_bytes: u64,
    /// Live bytes in background objects.
    pub bgo_bytes: u64,
    /// Live foreground object count.
    pub fgo_objects: u64,
    /// Live background object count.
    pub bgo_objects: u64,
    /// The current dynamic heap limit.
    pub limit: u64,
}

/// The region-based Java heap.
///
/// # Examples
///
/// ```
/// use fleet_heap::{AllocContext, Heap, HeapConfig};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let a = heap.alloc(128);
/// heap.add_root(a);
/// heap.set_context(AllocContext::Background);
/// let b = heap.alloc(64); // a BGO
/// heap.add_ref(a, b);     // write barrier dirties a's card
/// assert!(heap.cards().dirty_len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Heap {
    config: HeapConfig,
    regions: Vec<Option<Region>>,
    arena: Vec<Option<Object>>,
    roots: Vec<ObjectId>,
    alloc_targets: HashMap<RegionKind, RegionId>,
    context: AllocContext,
    gc_epoch: u32,
    limit: u64,
    used_bytes: u64,
    live_bytes: u64,
    live_objects: u64,
    events: Vec<HeapEvent>,
    cards: CardTable,
    /// Flight-recorder buffer (see `crates/audit`); disabled by default.
    #[cfg(feature = "audit")]
    audit: fleet_audit::EventLog,
    /// Observability record buffer (see `crates/obs`); disabled by default.
    /// The collectors in `fleet-gc` push their phase spans here.
    #[cfg(feature = "obs")]
    obs: fleet_obs::ObsLog,
}

impl Heap {
    /// Creates an empty heap.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`HeapConfig::validate`].
    pub fn new(config: HeapConfig) -> Self {
        config.validate().expect("invalid heap configuration");
        let cards = CardTable::new(config.card_shift);
        Heap {
            config,
            regions: Vec::new(),
            arena: Vec::new(),
            roots: Vec::new(),
            alloc_targets: HashMap::new(),
            context: AllocContext::Foreground,
            gc_epoch: 0,
            limit: config.initial_limit,
            used_bytes: 0,
            live_bytes: 0,
            live_objects: 0,
            events: Vec::new(),
            cards,
            #[cfg(feature = "audit")]
            audit: fleet_audit::EventLog::default(),
            #[cfg(feature = "obs")]
            obs: fleet_obs::ObsLog::default(),
        }
    }

    /// The flight-recorder buffer (drained by the device layer).
    #[cfg(feature = "audit")]
    pub fn audit_log_mut(&mut self) -> &mut fleet_audit::EventLog {
        &mut self.audit
    }

    /// Read-only view of the flight-recorder buffer.
    #[cfg(feature = "audit")]
    pub fn audit_log(&self) -> &fleet_audit::EventLog {
        &self.audit
    }

    /// The observability record buffer (drained by the device layer).
    #[cfg(feature = "obs")]
    pub fn obs_log_mut(&mut self) -> &mut fleet_obs::ObsLog {
        &mut self.obs
    }

    /// Read-only view of the observability record buffer.
    #[cfg(feature = "obs")]
    pub fn obs_log(&self) -> &fleet_obs::ObsLog {
        &self.obs
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Current allocation context (the owner app's fore/background state).
    pub fn context(&self) -> AllocContext {
        self.context
    }

    /// Switches the allocation context. New allocations after a switch to
    /// [`AllocContext::Background`] become BGO and go to separate regions.
    pub fn set_context(&mut self, context: AllocContext) {
        if self.context != context {
            self.context = context;
            // New state, new allocation regions: keeps FGO and BGO apart.
            self.alloc_targets.remove(&RegionKind::Eden);
            self.alloc_targets.remove(&RegionKind::Bg);
        }
    }

    // ---------------------------------------------------------------- regions

    fn create_region(&mut self, kind: RegionKind) -> RegionId {
        let idx = self.regions.len() as u32;
        let id = RegionId(idx);
        let base = idx as u64 * self.config.region_size as u64;
        let region = Region::new(id, kind, base, self.config.region_size, true);
        self.events.push(HeapEvent::RegionMapped { base, len: self.config.region_size as u64 });
        self.regions.push(Some(region));
        audit!(self, |pid| fleet_audit::AuditEvent::RegionMapped {
            pid,
            region: idx,
            base,
            len: self.config.region_size as u64,
            kind: kind.to_string(),
        });
        id
    }

    /// The region with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if the region was freed or never existed.
    pub fn region(&self, id: RegionId) -> &Region {
        self.try_region(id).expect("region freed or out of range")
    }

    /// The region with identifier `id`, or `None` if freed/unknown.
    pub fn try_region(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(id.0 as usize).and_then(|r| r.as_ref())
    }

    pub(crate) fn region_mut(&mut self, id: RegionId) -> &mut Region {
        self.regions
            .get_mut(id.0 as usize)
            .and_then(|r| r.as_mut())
            .expect("region freed or out of range")
    }

    /// Iterates over all mapped regions in address order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter_map(|r| r.as_ref())
    }

    /// Identifiers of all mapped regions in address order.
    pub fn region_ids(&self) -> Vec<RegionId> {
        self.regions().map(|r| r.id()).collect()
    }

    /// The region containing address `addr`, if mapped.
    pub fn region_of_addr(&self, addr: u64) -> Option<RegionId> {
        let idx = (addr / self.config.region_size as u64) as usize;
        self.regions.get(idx).and_then(|r| r.as_ref()).map(|r| r.id())
    }

    /// Releases an *empty* region back to the OS.
    ///
    /// # Panics
    ///
    /// Panics if the region still contains objects — collectors must copy or
    /// free every object first — or if it is a current allocation target.
    pub fn free_region(&mut self, id: RegionId) {
        let region = self
            .regions
            .get_mut(id.0 as usize)
            .and_then(|r| r.take())
            .expect("region freed or out of range");
        assert!(
            region.objects().is_empty(),
            "freeing a region that still holds {} objects",
            region.objects().len()
        );
        assert!(
            !self.alloc_targets.values().any(|&t| t == id),
            "freeing a region that is an active allocation target"
        );
        self.used_bytes -= region.used() as u64;
        self.events.push(HeapEvent::RegionFreed { base: region.base(), len: region.size() as u64 });
        audit!(self, |pid| fleet_audit::AuditEvent::RegionFreed {
            pid,
            region: id.0,
            base: region.base(),
            len: region.size() as u64,
        });
    }

    /// Stops bump-allocating into the current target regions, so subsequent
    /// allocations open fresh regions. Collectors call this at GC start: it
    /// separates "regions allocated after this GC" (newly-allocated flag)
    /// from everything older.
    pub fn retire_alloc_targets(&mut self) {
        self.alloc_targets.clear();
    }

    /// Clears the newly-allocated flag on every region (done at GC end).
    pub fn clear_newly_allocated_flags(&mut self) {
        for region in self.regions.iter_mut().filter_map(|r| r.as_mut()) {
            region.clear_newly_allocated();
        }
    }

    // ---------------------------------------------------------------- objects

    /// Allocates an object of `size` bytes in the current context.
    ///
    /// Foreground allocations go to [`RegionKind::Eden`] regions, background
    /// allocations to [`RegionKind::Bg`] regions — FGO and BGO never share a
    /// region (§5.2 "FGO & BGO separation").
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds the region size.
    pub fn alloc(&mut self, size: u32) -> ObjectId {
        let kind = match self.context {
            AllocContext::Foreground => RegionKind::Eden,
            AllocContext::Background => RegionKind::Bg,
        };
        self.alloc_in(size, kind, self.context)
    }

    /// Allocates into a region of a specific kind (used by collectors to copy
    /// survivors into to-regions).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds the region size.
    pub fn alloc_in(&mut self, size: u32, kind: RegionKind, context: AllocContext) -> ObjectId {
        assert!(size > 0, "cannot allocate a zero-sized object");
        assert!(size <= self.config.region_size, "object of {size} bytes exceeds the region size");
        let id = self.reserve_slot();
        let (region_id, offset) = self.bump_into(kind, size, id);
        let object = Object::new(size, context, self.gc_epoch, region_id, offset);
        self.arena[id.0 as usize] = Some(object);
        self.used_bytes += size as u64;
        self.live_bytes += size as u64;
        self.live_objects += 1;
        audit!(self, |pid| fleet_audit::AuditEvent::ObjectAlloc {
            pid,
            object: id.0 as u64,
            region: region_id.0,
            size: size as u64,
        });
        id
    }

    // Object ids are never recycled: a freed slot stays dead forever, so a
    // stale id held by a workload model can never silently alias a newer
    // object. The cost is 16 bytes per dead slot, negligible at simulation
    // scale.
    fn reserve_slot(&mut self) -> ObjectId {
        let slot = self.arena.len() as u32;
        self.arena.push(None);
        ObjectId(slot)
    }

    fn bump_into(&mut self, kind: RegionKind, size: u32, id: ObjectId) -> (RegionId, u32) {
        if let Some(&target) = self.alloc_targets.get(&kind) {
            if let Some(offset) = self.region_mut(target).bump(size, id) {
                return (target, offset);
            }
        }
        let fresh = self.create_region(kind);
        self.alloc_targets.insert(kind, fresh);
        // Slow-path allocation opened a fresh region: an instant span on the
        // app's track ("heap" cat — the device feeds these separately so
        // they never adopt GC phase spans as children).
        #[cfg(feature = "obs")]
        self.obs.push(|pid| {
            fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                pid,
                name: "alloc",
                cat: "heap",
                depth: 0,
                rel_start: 0,
                dur: 0,
                args: vec![("region", u64::from(fresh.0)), ("size", u64::from(size))],
            })
        });
        let offset =
            self.region_mut(fresh).bump(size, id).expect("fresh region can hold any valid object");
        (fresh, offset)
    }

    /// The object with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if the object has been freed.
    pub fn object(&self, id: ObjectId) -> &Object {
        self.try_object(id).expect("object freed or out of range")
    }

    /// The object with identifier `id`, or `None` if freed/unknown.
    pub fn try_object(&self, id: ObjectId) -> Option<&Object> {
        self.arena.get(id.0 as usize).and_then(|o| o.as_ref())
    }

    /// True if `id` refers to a live object.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.try_object(id).is_some()
    }

    fn object_mut(&mut self, id: ObjectId) -> &mut Object {
        self.arena
            .get_mut(id.0 as usize)
            .and_then(|o| o.as_mut())
            .expect("object freed or out of range")
    }

    /// Iterates over the identifiers of all live objects.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.arena.iter().enumerate().filter(|(_, o)| o.is_some()).map(|(i, _)| ObjectId(i as u32))
    }

    /// Exclusive upper bound on [`ObjectId`] slot indices ever handed out
    /// (slots are never recycled). Sizes the collectors' mark bitmaps.
    pub fn object_slots(&self) -> usize {
        self.arena.len()
    }

    /// Exclusive upper bound on [`RegionId`] slot indices ever handed out
    /// (regions are never renumbered). Sizes region membership bitmaps.
    pub fn region_slots(&self) -> usize {
        self.regions.len()
    }

    /// The absolute heap address of an object.
    pub fn address(&self, id: ObjectId) -> u64 {
        let obj = self.object(id);
        self.region(obj.region()).base() + obj.offset() as u64
    }

    /// The page indices `[first, last]` an object spans.
    pub fn pages_of(&self, id: ObjectId) -> std::ops::RangeInclusive<u64> {
        let addr = self.address(id);
        let size = self.object(id).size().max(1) as u64;
        (addr / PAGE_SIZE)..=((addr + size - 1) / PAGE_SIZE)
    }

    // ----------------------------------------------------- reference mutation

    /// Adds a reference edge `from → to`, running the write barrier on
    /// `from`.
    ///
    /// # Panics
    ///
    /// Panics if either object has been freed.
    pub fn add_ref(&mut self, from: ObjectId, to: ObjectId) {
        assert!(self.contains(to), "dangling reference target {to}");
        self.write_barrier(from);
        self.object_mut(from).refs_mut().push(to);
        audit!(self, |pid| fleet_audit::AuditEvent::RefAdded {
            pid,
            from: from.0 as u64,
            to: to.0 as u64,
        });
    }

    /// Removes one `from → to` edge if present, running the write barrier.
    pub fn remove_ref(&mut self, from: ObjectId, to: ObjectId) {
        self.write_barrier(from);
        let refs = self.object_mut(from).refs_mut();
        if let Some(pos) = refs.iter().position(|&r| r == to) {
            refs.swap_remove(pos);
            audit!(self, |pid| fleet_audit::AuditEvent::RefRemoved {
                pid,
                from: from.0 as u64,
                to: to.0 as u64,
            });
        }
    }

    /// Replaces all outgoing edges of `from`, running the write barrier.
    ///
    /// # Panics
    ///
    /// Panics if any target has been freed.
    pub fn set_refs(&mut self, from: ObjectId, refs: Vec<ObjectId>) {
        for &to in &refs {
            assert!(self.contains(to), "dangling reference target {to}");
        }
        audit!(self, |pid| fleet_audit::AuditEvent::RefsCleared { pid, object: from.0 as u64 });
        #[cfg(feature = "audit")]
        for &to in &refs {
            audit!(self, |pid| fleet_audit::AuditEvent::RefAdded {
                pid,
                from: from.0 as u64,
                to: to.0 as u64,
            });
        }
        self.write_barrier(from);
        *self.object_mut(from).refs_mut() = refs;
    }

    /// Drops all outgoing edges of `from`, running the write barrier.
    pub fn clear_refs(&mut self, from: ObjectId) {
        self.write_barrier(from);
        self.object_mut(from).refs_mut().clear();
        audit!(self, |pid| fleet_audit::AuditEvent::RefsCleared { pid, object: from.0 as u64 });
    }

    /// The write barrier: every object write dirties the card covering the
    /// written object, as in ART. Fleet's BGC consumes the cards that fall in
    /// *foreground* regions to find FGO→BGO references without scanning the
    /// whole (possibly swapped) foreground heap (§5.2); the minor GC consumes
    /// the cards in old regions to find old→young references.
    fn write_barrier(&mut self, obj: ObjectId) {
        let addr = self.address(obj);
        let size = self.object(obj).size() as u64;
        self.cards.dirty_range(addr, size);
    }

    // ------------------------------------------------------------------ roots

    /// Registers a GC root.
    pub fn add_root(&mut self, id: ObjectId) {
        if !self.roots.contains(&id) {
            self.roots.push(id);
            audit!(self, |pid| fleet_audit::AuditEvent::RootAdded { pid, object: id.0 as u64 });
        }
    }

    /// Unregisters a GC root (no-op if absent).
    pub fn remove_root(&mut self, id: ObjectId) {
        let before = self.roots.len();
        self.roots.retain(|&r| r != id);
        if self.roots.len() != before {
            audit!(self, |pid| fleet_audit::AuditEvent::RootRemoved { pid, object: id.0 as u64 });
        }
    }

    /// The current root set.
    pub fn roots(&self) -> &[ObjectId] {
        &self.roots
    }

    // ----------------------------------------------------------- GC machinery

    /// Copies a live object into the current to-region of kind `dest`,
    /// removing it from its old region. The object keeps its identifier.
    ///
    /// # Panics
    ///
    /// Panics if the object has been freed.
    pub fn copy_object(&mut self, id: ObjectId, dest: RegionKind) {
        let (size, old_region) = {
            let o = self.object(id);
            (o.size(), o.region())
        };
        self.region_mut(old_region).remove_object(id);
        let (new_region, offset) = self.bump_into(dest, size, id);
        self.used_bytes += size as u64; // the from-region copy is reclaimed at free_region
        self.object_mut(id).relocate(new_region, offset);
        audit!(self, |pid| fleet_audit::AuditEvent::ObjectCopied {
            pid,
            object: id.0 as u64,
            from_region: old_region.0,
            to_region: new_region.0,
            size: size as u64,
        });
    }

    /// Frees a dead object, removing it from its region.
    ///
    /// # Panics
    ///
    /// Panics if the object was already freed or is still a root.
    pub fn free_object(&mut self, id: ObjectId) {
        assert!(!self.roots.contains(&id), "freeing a root object {id}");
        let obj = self
            .arena
            .get_mut(id.0 as usize)
            .and_then(|o| o.take())
            .expect("object freed or out of range");
        self.region_mut(obj.region()).remove_object(id);
        self.live_bytes -= obj.size() as u64;
        self.live_objects -= 1;
        audit!(self, |pid| fleet_audit::AuditEvent::ObjectFreed {
            pid,
            object: id.0 as u64,
            region: obj.region().0,
            size: obj.size() as u64,
        });
    }

    /// Sets (or clears) the RGS classification of an object.
    pub fn set_class(&mut self, id: ObjectId, class: Option<ObjectClass>) {
        self.object_mut(id).set_class(class);
    }

    /// Rewrites the FGO/BGO context of an object. Used when the paper's
    /// rule "at the moment an app switches to the background, all existing
    /// objects are considered FGO" is applied (§4.1).
    pub fn set_object_context(&mut self, id: ObjectId, context: AllocContext) {
        self.object_mut(id).set_context(context);
    }

    /// Changes a region's kind (e.g. marking compacted regions as
    /// [`RegionKind::Fg`] after the full GC that separates FGO).
    pub fn set_region_kind(&mut self, id: RegionId, kind: RegionKind) {
        self.region_mut(id).set_kind(kind);
    }

    /// The GC epoch — number of collections completed.
    pub fn gc_epoch(&self) -> u32 {
        self.gc_epoch
    }

    /// Increments the GC epoch (collectors call this once per collection).
    pub fn bump_gc_epoch(&mut self) {
        self.gc_epoch += 1;
    }

    /// True when allocation pressure has reached the dynamic heap limit and
    /// a GC should run (§4.2's threshold trigger).
    pub fn should_trigger_gc(&self) -> bool {
        self.used_bytes >= self.limit
    }

    /// The current dynamic heap limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Recomputes the heap limit after a GC: `live_bytes × factor`, floored
    /// at the initial limit. The factor is the fore- or background growth
    /// factor depending on the current context (§4.2, §7.4).
    pub fn update_limit_after_gc(&mut self) {
        let factor = match self.context {
            AllocContext::Foreground => self.config.growth_factor_foreground,
            AllocContext::Background => self.config.growth_factor_background,
        };
        self.limit = ((self.live_bytes as f64 * factor) as u64).max(self.config.initial_limit);
    }

    /// Overrides the heap limit directly. Non-moving collectors (Marvin's
    /// bookmarking GC) size the limit from *used* rather than live bytes
    /// because they cannot compact fragmentation away.
    pub fn set_limit(&mut self, limit: u64) {
        self.limit = limit.max(self.config.initial_limit);
    }

    /// The growth factor for the current context (fore- or background).
    pub fn growth_factor(&self) -> f64 {
        match self.context {
            AllocContext::Foreground => self.config.growth_factor_foreground,
            AllocContext::Background => self.config.growth_factor_background,
        }
    }

    /// Objects whose addresses fall inside card `card` of the card table.
    pub fn objects_in_card(&self, card: usize) -> Vec<ObjectId> {
        let range = self.cards.card_range(card);
        let Some(region_id) = self.region_of_addr(range.start) else {
            return Vec::new();
        };
        let region = self.region(region_id);
        let base = region.base();
        region
            .objects()
            .iter()
            .copied()
            .filter(|&id| {
                let o = self.object(id);
                let addr = base + o.offset() as u64;
                let end = addr + o.size() as u64;
                // Any overlap with the card range counts.
                addr < range.end && end > range.start
            })
            .collect()
    }

    /// The BGC card table.
    pub fn cards(&self) -> &CardTable {
        &self.cards
    }

    /// Mutable access to the BGC card table (collectors clear it).
    pub fn cards_mut(&mut self) -> &mut CardTable {
        &mut self.cards
    }

    // ------------------------------------------------------------------ stats

    /// Point-in-time occupancy statistics.
    pub fn stats(&self) -> HeapStats {
        let mut fgo_bytes = 0;
        let mut bgo_bytes = 0;
        let mut fgo_objects = 0;
        let mut bgo_objects = 0;
        for obj in self.arena.iter().filter_map(|o| o.as_ref()) {
            match obj.context() {
                AllocContext::Foreground => {
                    fgo_bytes += obj.size() as u64;
                    fgo_objects += 1;
                }
                AllocContext::Background => {
                    bgo_bytes += obj.size() as u64;
                    bgo_objects += 1;
                }
            }
        }
        HeapStats {
            used_bytes: self.used_bytes,
            live_bytes: self.live_bytes,
            live_objects: self.live_objects,
            regions: self.regions().count() as u64,
            fgo_bytes,
            bgo_bytes,
            fgo_objects,
            bgo_objects,
            limit: self.limit,
        }
    }

    /// Bytes bump-allocated in mapped regions (live + garbage).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes of live objects.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Live object count.
    pub fn live_objects(&self) -> u64 {
        self.live_objects
    }

    /// Fragmentation ratio: used bytes per live byte (1.0 = perfectly
    /// compact). Non-moving collectors (Marvin) let this grow; copying
    /// collectors reset it to ~1 at every collection.
    pub fn fragmentation(&self) -> f64 {
        if self.live_bytes == 0 {
            1.0
        } else {
            self.used_bytes as f64 / self.live_bytes as f64
        }
    }

    /// Drains queued address-space events for the kernel model.
    pub fn drain_events(&mut self) -> Vec<HeapEvent> {
        std::mem::take(&mut self.events)
    }

    /// Verifies that no live object references a freed object and that
    /// every root is live. O(heap); used by debug assertions and tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_refs(&self) -> Result<(), String> {
        for &root in &self.roots {
            if !self.contains(root) {
                return Err(format!("dead root {root}"));
            }
        }
        for (i, slot) in self.arena.iter().enumerate() {
            let Some(obj) = slot.as_ref() else { continue };
            for &r in obj.refs() {
                if !self.contains(r) {
                    return Err(format!("obj#{i} holds a dangling reference to {r}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> Heap {
        Heap::new(HeapConfig { region_size: 4096, initial_limit: 8192, ..HeapConfig::default() })
    }

    #[test]
    fn alloc_assigns_addresses_and_context() {
        let mut h = small_heap();
        let a = h.alloc(100);
        let b = h.alloc(50);
        assert_eq!(h.address(a), 0);
        assert_eq!(h.address(b), 100);
        assert_eq!(h.object(a).context(), AllocContext::Foreground);
        h.set_context(AllocContext::Background);
        let c = h.alloc(10);
        assert_eq!(h.object(c).context(), AllocContext::Background);
        // BGO live in a different region than FGO.
        assert_ne!(h.object(a).region(), h.object(c).region());
        assert_eq!(h.region(h.object(c).region()).kind(), RegionKind::Bg);
    }

    #[test]
    fn regions_roll_over_when_full() {
        let mut h = small_heap();
        let a = h.alloc(3000);
        let b = h.alloc(3000);
        assert_ne!(h.object(a).region(), h.object(b).region());
        assert_eq!(h.stats().regions, 2);
    }

    #[test]
    fn events_report_mapping_and_freeing() {
        let mut h = small_heap();
        let a = h.alloc(100);
        let events = h.drain_events();
        assert_eq!(events, vec![HeapEvent::RegionMapped { base: 0, len: 4096 }]);
        let region = h.object(a).region();
        h.retire_alloc_targets();
        h.free_object(a);
        h.free_region(region);
        let events = h.drain_events();
        assert_eq!(events, vec![HeapEvent::RegionFreed { base: 0, len: 4096 }]);
    }

    #[test]
    #[should_panic(expected = "still holds")]
    fn freeing_nonempty_region_panics() {
        let mut h = small_heap();
        let a = h.alloc(10);
        let region = h.object(a).region();
        h.retire_alloc_targets();
        h.free_region(region);
    }

    #[test]
    fn write_barrier_dirties_written_objects_card() {
        let mut h = small_heap();
        let fgo = h.alloc(64);
        h.set_context(AllocContext::Background);
        let bgo = h.alloc(64);
        let bgo2 = h.alloc(64);
        assert_eq!(h.cards().dirty_len(), 0);
        h.add_ref(fgo, bgo); // FGO write: dirty card at the FGO's address
        assert!(h.cards().is_dirty(h.address(fgo)));
        assert!(!h.cards().is_dirty(h.address(bgo)));
        h.add_ref(bgo, bgo2); // BGO write dirties its own (Bg-region) card
        assert!(h.cards().is_dirty(h.address(bgo)));
    }

    #[test]
    fn copy_preserves_identity_and_size() {
        let mut h = small_heap();
        let a = h.alloc(100);
        let b = h.alloc(40);
        h.add_ref(a, b);
        let old_addr = h.address(a);
        h.retire_alloc_targets();
        h.copy_object(a, RegionKind::Fg);
        assert_ne!(h.address(a), old_addr);
        assert_eq!(h.object(a).size(), 100);
        assert_eq!(h.object(a).refs(), &[b]);
        assert_eq!(h.region(h.object(a).region()).kind(), RegionKind::Fg);
    }

    #[test]
    fn object_ids_are_never_recycled() {
        let mut h = small_heap();
        let a = h.alloc(10);
        h.free_object(a);
        assert!(!h.contains(a));
        let b = h.alloc(10);
        assert_ne!(a, b, "a stale id must never alias a new object");
        assert_eq!(h.live_objects(), 1);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn freeing_root_panics() {
        let mut h = small_heap();
        let a = h.alloc(10);
        h.add_root(a);
        h.free_object(a);
    }

    #[test]
    fn gc_trigger_follows_limit() {
        let mut h = small_heap();
        assert!(!h.should_trigger_gc());
        h.alloc(4000);
        h.alloc(4000);
        h.alloc(200);
        assert!(h.should_trigger_gc());
        // After "GC", limit grows from live bytes.
        h.update_limit_after_gc();
        assert_eq!(h.limit(), ((8200f64 * 2.0) as u64).max(8192));
        assert!(!h.should_trigger_gc());
    }

    #[test]
    fn background_growth_factor_is_tighter() {
        let mut h = Heap::new(HeapConfig {
            region_size: 4096,
            initial_limit: 4096,
            ..HeapConfig::default()
        });
        for _ in 0..100 {
            h.alloc(512);
        }
        h.set_context(AllocContext::Background);
        h.update_limit_after_gc();
        let bg_limit = h.limit();
        h.set_context(AllocContext::Foreground);
        h.update_limit_after_gc();
        let fg_limit = h.limit();
        assert!(bg_limit < fg_limit);
        assert_eq!(bg_limit, (51200f64 * 1.1) as u64);
    }

    #[test]
    fn objects_in_card_finds_overlaps() {
        let mut h = small_heap();
        let a = h.alloc(1000);
        let b = h.alloc(100);
        let c = h.alloc(3000 - 1100 + 100); // stays in region 0
        let card0 = h.cards().card_of(h.address(a));
        let in_card = h.objects_in_card(card0);
        assert!(in_card.contains(&a));
        assert!(in_card.contains(&b)); // b at offset 1000 overlaps card 0? card is 1024 bytes: b spans 1000..1100 — overlap yes
        let card1 = h.cards().card_of(1500);
        assert!(h.objects_in_card(card1).contains(&c));
    }

    #[test]
    fn pages_of_spans_boundaries() {
        let mut h = small_heap();
        let a = h.alloc(100);
        assert_eq!(h.pages_of(a), 0..=0);
        let big = h.alloc(4000 - 104); // fills most of the rest of page 0
        let _ = big;
        let b = h.alloc(200); // new region at base 4096
        assert_eq!(h.pages_of(b), 1..=1);
    }

    #[test]
    fn set_refs_validates_targets() {
        let mut h = small_heap();
        let a = h.alloc(10);
        let b = h.alloc(10);
        h.set_refs(a, vec![b, b]);
        assert_eq!(h.object(a).refs().len(), 2);
        h.remove_ref(a, b);
        assert_eq!(h.object(a).refs(), &[b]);
        h.clear_refs(a);
        assert!(h.object(a).refs().is_empty());
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn add_ref_rejects_dead_target() {
        let mut h = small_heap();
        let a = h.alloc(10);
        let b = h.alloc(10);
        h.free_object(b);
        h.add_ref(a, b);
    }

    #[test]
    fn stats_split_fgo_bgo() {
        let mut h = small_heap();
        h.alloc(100);
        h.alloc(100);
        h.set_context(AllocContext::Background);
        h.alloc(50);
        let s = h.stats();
        assert_eq!(s.fgo_bytes, 200);
        assert_eq!(s.bgo_bytes, 50);
        assert_eq!(s.fgo_objects, 2);
        assert_eq!(s.bgo_objects, 1);
        assert_eq!(s.live_objects, 3);
    }

    #[test]
    fn roots_are_deduplicated() {
        let mut h = small_heap();
        let a = h.alloc(10);
        h.add_root(a);
        h.add_root(a);
        assert_eq!(h.roots().len(), 1);
        h.remove_root(a);
        assert!(h.roots().is_empty());
    }
}
