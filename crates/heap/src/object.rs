//! Objects and the allocation context that classifies them as FGO or BGO.

use crate::region::RegionId;
use serde::{Deserialize, Serialize};

/// Identifier of an object in the heap's arena.
///
/// Identifiers are stable across copying GCs — a collector moves the object's
/// *address*, never its id — which is what lets the workload models keep
/// handles to objects across collections, mirroring how real references are
/// fixed up transparently by ART's concurrent-copying collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// The app state at allocation time — the paper's FGO/BGO distinction (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocContext {
    /// Allocated while the owner app was in the foreground (an FGO).
    Foreground,
    /// Allocated while the owner app was in the background (a BGO).
    Background,
}

impl std::fmt::Display for AllocContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocContext::Foreground => write!(f, "FGO"),
            AllocContext::Background => write!(f, "BGO"),
        }
    }
}

/// The classification assigned by the RGS grouping GC (§5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Near-roots object: BFS depth from the roots ≤ the depth parameter D.
    Nro,
    /// Foreground young object: allocated after the last GC before the app
    /// switched to the background.
    Fyo,
    /// Working-set object: marked by a mutator thread's read barrier while
    /// the grouping GC ran.
    Ws,
    /// Everything else; eligible for proactive swap-out.
    Cold,
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectClass::Nro => write!(f, "NRO"),
            ObjectClass::Fyo => write!(f, "FYO"),
            ObjectClass::Ws => write!(f, "WS"),
            ObjectClass::Cold => write!(f, "cold"),
        }
    }
}

/// A heap object: a size, outgoing reference edges, and placement metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Object {
    size: u32,
    refs: Vec<ObjectId>,
    context: AllocContext,
    alloc_epoch: u32,
    region: RegionId,
    offset: u32,
    class: Option<ObjectClass>,
}

impl Object {
    pub(crate) fn new(
        size: u32,
        context: AllocContext,
        alloc_epoch: u32,
        region: RegionId,
        offset: u32,
    ) -> Self {
        Object { size, refs: Vec::new(), context, alloc_epoch, region, offset, class: None }
    }

    /// Payload size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Outgoing reference edges.
    pub fn refs(&self) -> &[ObjectId] {
        &self.refs
    }

    pub(crate) fn refs_mut(&mut self) -> &mut Vec<ObjectId> {
        &mut self.refs
    }

    /// Whether this is an FGO or a BGO.
    pub fn context(&self) -> AllocContext {
        self.context
    }

    /// GC epoch (collection count) at allocation; used for lifetime
    /// histograms and FYO detection.
    pub fn alloc_epoch(&self) -> u32 {
        self.alloc_epoch
    }

    /// The region currently holding the object.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Byte offset inside the region.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    pub(crate) fn relocate(&mut self, region: RegionId, offset: u32) {
        self.region = region;
        self.offset = offset;
    }

    /// RGS classification, if a grouping GC has run.
    pub fn class(&self) -> Option<ObjectClass> {
        self.class
    }

    pub(crate) fn set_class(&mut self, class: Option<ObjectClass>) {
        self.class = class;
    }

    pub(crate) fn set_context(&mut self, context: AllocContext) {
        self.context = context;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(7).to_string(), "obj#7");
        assert_eq!(AllocContext::Foreground.to_string(), "FGO");
        assert_eq!(AllocContext::Background.to_string(), "BGO");
        assert_eq!(ObjectClass::Nro.to_string(), "NRO");
        assert_eq!(ObjectClass::Cold.to_string(), "cold");
    }

    #[test]
    fn object_metadata() {
        let mut o = Object::new(48, AllocContext::Background, 3, RegionId(2), 128);
        assert_eq!(o.size(), 48);
        assert_eq!(o.alloc_epoch(), 3);
        assert_eq!(o.region(), RegionId(2));
        assert_eq!(o.offset(), 128);
        assert!(o.refs().is_empty());
        assert_eq!(o.class(), None);
        o.set_class(Some(ObjectClass::Ws));
        assert_eq!(o.class(), Some(ObjectClass::Ws));
        o.relocate(RegionId(5), 0);
        assert_eq!(o.region(), RegionId(5));
    }
}
