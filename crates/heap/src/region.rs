//! Heap regions: fixed-size segments with bump-pointer allocation.
//!
//! ART divides the heap into 256 KiB regions (Table 2). Fleet extends the
//! per-region metadata with a *region-type flag* marking regions that hold
//! foreground objects (§5.2 "FGO & BGO separation") and relies on ART's
//! existing *newly-allocated* flag to find FYO (§5.3.1). The RGS grouping GC
//! adds three to-region kinds: Launch, WS and Cold (§5.3.1 "Group into
//! regions").

use crate::object::ObjectId;
use serde::{Deserialize, Serialize};

/// Identifier of a region. Regions are never renumbered; freed slots are
/// retired and new regions extend the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// What a region holds. This combines ART's allocation spaces with Fleet's
/// region-type flag and the RGS to-region kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Ordinary allocation region for foreground mutator allocation.
    Eden,
    /// Compacted foreground objects (region-type flag set, §5.2).
    Fg,
    /// Background allocation region (BGO live here).
    Bg,
    /// RGS launch region: NRO and FYO grouped for the next hot-launch.
    Launch,
    /// RGS working-set region: objects the background app still uses.
    Ws,
    /// RGS cold region: proactively swapped out.
    Cold,
}

impl RegionKind {
    /// True for regions that hold foreground objects — the regions whose
    /// writes must dirty the card table and which BGC must not trace into.
    pub fn holds_foreground(self) -> bool {
        matches!(
            self,
            RegionKind::Eden
                | RegionKind::Fg
                | RegionKind::Launch
                | RegionKind::Ws
                | RegionKind::Cold
        )
    }
}

impl std::fmt::Display for RegionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RegionKind::Eden => "eden",
            RegionKind::Fg => "fg",
            RegionKind::Bg => "bg",
            RegionKind::Launch => "launch",
            RegionKind::Ws => "ws",
            RegionKind::Cold => "cold",
        };
        write!(f, "{s}")
    }
}

/// A fixed-size heap segment with a bump pointer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    id: RegionId,
    kind: RegionKind,
    base: u64,
    size: u32,
    top: u32,
    newly_allocated: bool,
    /// Objects in the region, in increasing-offset order (bump allocation
    /// appends monotonically).
    objects: Vec<ObjectId>,
}

impl Region {
    pub(crate) fn new(
        id: RegionId,
        kind: RegionKind,
        base: u64,
        size: u32,
        newly_allocated: bool,
    ) -> Self {
        Region { id, kind, base, size, top: 0, newly_allocated, objects: Vec::new() }
    }

    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The region's kind.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    pub(crate) fn set_kind(&mut self, kind: RegionKind) {
        self.kind = kind;
    }

    /// First heap address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Region capacity in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Bytes already bump-allocated.
    pub fn used(&self) -> u32 {
        self.top
    }

    /// Bytes still available.
    pub fn free(&self) -> u32 {
        self.size - self.top
    }

    /// ART's newly-allocated flag: true until the first GC after the region
    /// was created. §5.3.1 uses it to detect FYO.
    pub fn newly_allocated(&self) -> bool {
        self.newly_allocated
    }

    pub(crate) fn clear_newly_allocated(&mut self) {
        self.newly_allocated = false;
    }

    /// Objects in the region in increasing-offset order.
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// Bump-allocates `size` bytes, returning the offset, or `None` when the
    /// region is full.
    pub(crate) fn bump(&mut self, size: u32, obj: ObjectId) -> Option<u32> {
        if size == 0 || size > self.free() {
            return None;
        }
        let offset = self.top;
        self.top += size;
        self.objects.push(obj);
        Some(offset)
    }

    pub(crate) fn remove_object(&mut self, obj: ObjectId) {
        if let Some(pos) = self.objects.iter().position(|&o| o == obj) {
            self.objects.remove(pos);
        }
    }

    /// End address (exclusive) of the allocated part of the region.
    pub fn allocated_end(&self) -> u64 {
        self.base + self.top as u64
    }

    /// The address range `[base, base + size)` of the whole region.
    pub fn address_range(&self) -> std::ops::Range<u64> {
        self.base..self.base + self.size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_monotonic() {
        let mut r = Region::new(RegionId(0), RegionKind::Eden, 0, 1024, true);
        assert_eq!(r.bump(100, ObjectId(0)), Some(0));
        assert_eq!(r.bump(200, ObjectId(1)), Some(100));
        assert_eq!(r.used(), 300);
        assert_eq!(r.free(), 724);
        assert_eq!(r.objects(), &[ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn bump_rejects_overflow_and_zero() {
        let mut r = Region::new(RegionId(0), RegionKind::Eden, 0, 128, true);
        assert_eq!(r.bump(0, ObjectId(0)), None);
        assert_eq!(r.bump(129, ObjectId(0)), None);
        assert_eq!(r.bump(128, ObjectId(0)), Some(0));
        assert_eq!(r.bump(1, ObjectId(1)), None);
    }

    #[test]
    fn foreground_kinds() {
        assert!(RegionKind::Eden.holds_foreground());
        assert!(RegionKind::Fg.holds_foreground());
        assert!(RegionKind::Launch.holds_foreground());
        assert!(RegionKind::Ws.holds_foreground());
        assert!(RegionKind::Cold.holds_foreground());
        assert!(!RegionKind::Bg.holds_foreground());
    }

    #[test]
    fn address_range_and_flags() {
        let mut r = Region::new(RegionId(3), RegionKind::Bg, 4096, 256, true);
        assert_eq!(r.address_range(), 4096..4352);
        assert!(r.newly_allocated());
        r.clear_newly_allocated();
        assert!(!r.newly_allocated());
        r.bump(10, ObjectId(9));
        assert_eq!(r.allocated_end(), 4106);
        r.remove_object(ObjectId(9));
        assert!(r.objects().is_empty());
    }

    #[test]
    fn kind_display() {
        assert_eq!(RegionKind::Launch.to_string(), "launch");
        assert_eq!(RegionId(2).to_string(), "region#2");
    }
}
