//! Reference-graph utilities: reachability and BFS depth from the roots.
//!
//! The paper defines *near-roots objects* (NRO) as objects whose shortest
//! path from the roots is at most a depth parameter D (§4.2). [`depth_map`]
//! computes exactly that shortest-path depth with a breadth-first search —
//! the same traversal order the RGS grouping GC uses (§5.3.1).

use crate::heap::Heap;
use crate::object::ObjectId;
use std::collections::{HashMap, HashSet, VecDeque};

/// BFS shortest-path depth from the root set for every reachable object.
///
/// Roots have depth 0. Traversal stops expanding past `max_depth` if given,
/// so callers that only need "depth ≤ D" pay O(|NRO|) not O(|heap|).
///
/// # Examples
///
/// ```
/// use fleet_heap::{depth_map, Heap, HeapConfig};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let root = heap.alloc(16);
/// let child = heap.alloc(16);
/// let grandchild = heap.alloc(16);
/// heap.add_root(root);
/// heap.add_ref(root, child);
/// heap.add_ref(child, grandchild);
/// let depths = depth_map(&heap, None);
/// assert_eq!(depths[&root], 0);
/// assert_eq!(depths[&grandchild], 2);
/// ```
pub fn depth_map(heap: &Heap, max_depth: Option<u32>) -> HashMap<ObjectId, u32> {
    let mut depths: HashMap<ObjectId, u32> = HashMap::new();
    let mut queue: VecDeque<ObjectId> = VecDeque::new();
    for &root in heap.roots() {
        if heap.contains(root) && !depths.contains_key(&root) {
            depths.insert(root, 0);
            queue.push_back(root);
        }
    }
    while let Some(obj) = queue.pop_front() {
        let d = depths[&obj];
        if max_depth.is_some_and(|m| d >= m) {
            continue;
        }
        for &next in heap.object(obj).refs() {
            if heap.contains(next) && !depths.contains_key(&next) {
                depths.insert(next, d + 1);
                queue.push_back(next);
            }
        }
    }
    depths
}

/// The set of objects reachable from the roots.
pub fn reachable_set(heap: &Heap) -> HashSet<ObjectId> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut stack: Vec<ObjectId> =
        heap.roots().iter().copied().filter(|&r| heap.contains(r)).collect();
    seen.extend(stack.iter().copied());
    while let Some(obj) = stack.pop() {
        for &next in heap.object(obj).refs() {
            if heap.contains(next) && seen.insert(next) {
                stack.push(next);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeapConfig;

    fn chain(n: usize) -> (Heap, Vec<ObjectId>) {
        let mut h = Heap::new(HeapConfig::default());
        let ids: Vec<ObjectId> = (0..n).map(|_| h.alloc(16)).collect();
        h.add_root(ids[0]);
        for w in ids.windows(2) {
            h.add_ref(w[0], w[1]);
        }
        (h, ids)
    }

    #[test]
    fn depths_along_a_chain() {
        let (h, ids) = chain(5);
        let depths = depth_map(&h, None);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(depths[id], i as u32);
        }
    }

    #[test]
    fn max_depth_truncates() {
        let (h, ids) = chain(10);
        let depths = depth_map(&h, Some(3));
        assert_eq!(depths.len(), 4); // depths 0..=3
        assert!(!depths.contains_key(&ids[4]));
    }

    #[test]
    fn shortest_path_wins_on_diamonds() {
        let mut h = Heap::new(HeapConfig::default());
        let root = h.alloc(16);
        let a = h.alloc(16);
        let b = h.alloc(16);
        h.add_root(root);
        h.add_ref(root, a);
        h.add_ref(a, b);
        h.add_ref(root, b); // direct shortcut
        let depths = depth_map(&h, None);
        assert_eq!(depths[&b], 1);
    }

    #[test]
    fn unreachable_objects_are_absent() {
        let mut h = Heap::new(HeapConfig::default());
        let root = h.alloc(16);
        let garbage = h.alloc(16);
        h.add_root(root);
        let depths = depth_map(&h, None);
        assert!(!depths.contains_key(&garbage));
        let reach = reachable_set(&h);
        assert!(reach.contains(&root));
        assert!(!reach.contains(&garbage));
    }

    #[test]
    fn cycles_terminate() {
        let mut h = Heap::new(HeapConfig::default());
        let a = h.alloc(16);
        let b = h.alloc(16);
        h.add_root(a);
        h.add_ref(a, b);
        h.add_ref(b, a);
        let depths = depth_map(&h, None);
        assert_eq!(depths.len(), 2);
        assert_eq!(reachable_set(&h).len(), 2);
    }

    #[test]
    fn empty_roots_reach_nothing() {
        let mut h = Heap::new(HeapConfig::default());
        h.alloc(16);
        assert!(depth_map(&h, None).is_empty());
        assert!(reachable_set(&h).is_empty());
    }
}
