//! Cross-layer flight recorder and online invariant auditor.
//!
//! The Fleet claims live in the *interaction* between layers: which pages
//! the kernel keeps resident versus which objects the GC copies. End-state
//! assertions cannot see a page that was swapped out and then "touched"
//! without a fault, or an LMK kill that leaks frames — those bugs only
//! exist in mid-run orderings. This crate makes the orderings observable:
//!
//! * [`AuditEvent`] — one structured, deterministic record per state
//!   transition in `fleet-kernel`, `fleet-heap`, `fleet-gc` and the device
//!   layer (page map/unmap, fault, swap-out, LRU promotion, region and
//!   object lifecycle, GC phases, launches, kills),
//! * [`EventLog`] — the per-component buffer the mechanism crates emit
//!   into; every call site is compiled out unless the `audit` feature of
//!   the emitting crate is on, so the disabled recorder costs nothing,
//! * [`Recorder`] — canonical serialization + streaming FNV-1a hash of the
//!   whole event stream, with periodic checkpoints and a ring buffer of
//!   the most recent events (the "flight recorder"),
//! * [`Auditor`] — shadow state rebuilt purely from events, checking seven
//!   invariant families *online*: page conservation, LRU/residency
//!   membership, GC soundness, launch accounting, fault/degradation
//!   consistency, swap-tier slot conservation, and proactive-reclaim
//!   discipline (the Swam daemon only touches background, unpinned,
//!   anonymous pages and conserves frames),
//! * [`AuditPipeline`] — recorder + auditor behind one `feed` call;
//!   violations panic with the last events as context.
//!
//! The crate deliberately depends on nothing and speaks only primitive
//! types (`u32` pids and region ids, `u64` page indexes and sizes), so
//! every mechanism crate can emit events without dependency cycles.
//!
//! # Examples
//!
//! ```
//! use fleet_audit::{AuditEvent, AuditPipeline};
//!
//! let mut pipe = AuditPipeline::new();
//! let dev = pipe.attach();
//! pipe.feed(dev, AuditEvent::PageMapped { pid: 1, page: 7, file: false });
//! pipe.feed(dev, AuditEvent::Counters { used_frames: 1, swap_used: 0 });
//! assert_eq!(pipe.recorder().event_count(), 2);
//! ```

#![warn(missing_docs)]

mod auditor;
mod event;
mod log;
mod recorder;

pub use auditor::Auditor;
pub use event::AuditEvent;
pub use log::EventLog;
pub use recorder::{Recorder, CHECKPOINT_INTERVAL, RING_CAPACITY};

/// Recorder + auditor behind a single `feed` call.
///
/// Multiple simulated devices can share one pipeline: each calls
/// [`AuditPipeline::attach`] once and tags every event with the returned
/// ordinal, so identical pids on different devices never collide.
#[derive(Debug, Default)]
pub struct AuditPipeline {
    recorder: Recorder,
    auditor: Auditor,
    devices: u32,
}

impl AuditPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a device and returns its ordinal for [`AuditPipeline::feed`].
    pub fn attach(&mut self) -> u32 {
        let id = self.devices;
        self.devices += 1;
        id
    }

    /// Records `event` and checks every invariant it participates in.
    ///
    /// # Panics
    ///
    /// Panics on the first invariant violation, printing the violated
    /// invariant and the last [`RING_CAPACITY`] events as context.
    pub fn feed(&mut self, device: u32, event: AuditEvent) {
        self.recorder.record(device, &event);
        if let Err(msg) = self.auditor.observe(device, &event) {
            panic!(
                "audit violation at event #{} (device {device}): {msg}\n\
                 --- last {} events ---\n{}",
                self.recorder.event_count(),
                RING_CAPACITY,
                self.recorder.ring_dump(),
            );
        }
    }

    /// The flight recorder (hash, checkpoints, ring buffer).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The invariant auditor.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_hash_is_deterministic() {
        let run = || {
            let mut pipe = AuditPipeline::new();
            let dev = pipe.attach();
            for page in 0..100 {
                pipe.feed(dev, AuditEvent::PageMapped { pid: 1, page, file: page % 2 == 0 });
            }
            pipe.feed(dev, AuditEvent::Counters { used_frames: 100, swap_used: 0 });
            pipe.recorder().hash()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "audit violation")]
    fn conservation_violation_panics() {
        let mut pipe = AuditPipeline::new();
        let dev = pipe.attach();
        pipe.feed(dev, AuditEvent::PageMapped { pid: 1, page: 0, file: false });
        pipe.feed(dev, AuditEvent::Counters { used_frames: 2, swap_used: 0 });
    }

    #[test]
    fn devices_do_not_collide() {
        let mut pipe = AuditPipeline::new();
        let a = pipe.attach();
        let b = pipe.attach();
        // Same (pid, page) on two devices is not a double map.
        pipe.feed(a, AuditEvent::PageMapped { pid: 1, page: 0, file: false });
        pipe.feed(b, AuditEvent::PageMapped { pid: 1, page: 0, file: false });
        pipe.feed(a, AuditEvent::Counters { used_frames: 1, swap_used: 0 });
        pipe.feed(b, AuditEvent::Counters { used_frames: 1, swap_used: 0 });
    }
}
