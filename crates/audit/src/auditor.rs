//! The online invariant auditor: shadow state rebuilt from events, checked
//! at every step.
//!
//! Eight invariant families (see DESIGN.md §"Flight recorder"):
//!
//! 1. **Page conservation** — the event-derived resident and swapped page
//!    counts must equal what the kernel itself reports at every
//!    [`AuditEvent::Counters`] checkpoint, and a killed process must leave
//!    no page behind.
//! 2. **Residency / LRU membership** — a page is mapped at most once, is
//!    resident xor swapped, only faults when non-resident, only swaps out
//!    when resident, and LRU reclaim never evicts a pinned page.
//! 3. **GC soundness** — a collector never frees an object that was
//!    reachable when the collection started; a *complete* collection
//!    leaves exactly the reachable set alive with survivor bytes
//!    conserved; reported copy/free byte counts match the event stream;
//!    no dangling references remain at collection end; freed regions are
//!    empty.
//! 4. **Launch accounting** — a hot launch's reported fault count equals
//!    the launch-kind faults observed inside its window.
//! 5. **Fault resilience** — injected swap faults degrade, never corrupt:
//!    an I/O error is only reported against a page in the state the failing
//!    operation implies (reads target swapped pages, write-backs target
//!    resident victims), retries stay within the kernel's bounded budget,
//!    an LMK kill leaves its victim with zero mapped pages, and an
//!    evacuation abort names a region that actually exists. Page
//!    conservation (family 1) keeps holding under faults, so a lost or
//!    duplicated page still trips the `Counters` cross-check.
//! 6. **Tier slot conservation** — on a hybrid (zram + flash) stack every
//!    swapped anonymous page sits in exactly one tier: each swap-out is
//!    followed by exactly one [`AuditEvent::SwapTierStore`] naming a known
//!    tier, a [`AuditEvent::SwapWriteback`] *moves* a slot from zram to
//!    flash (never duplicates it, never targets a flash or resident page),
//!    and faulting/prefetching/unmapping the page retires its slot.
//! 7. **Proactive reclaim discipline** — the Swam daemon only touches
//!    background state: an [`AuditEvent::ProactiveSwapOut`] must name a
//!    mapped, resident, anonymous, unpinned page of a process that is not
//!    the current foreground app (tracked from [`AuditEvent::AppState`]),
//!    and it conserves frames exactly like an unadvised anonymous swap-out
//!    (resident goes down, the anon swap count goes up, so the family-1
//!    `Counters` cross-check keeps holding). An [`AuditEvent::WssSample`]
//!    estimate never exceeds the process's mapped page count.
//! 8. **Data integrity** — every [`AuditEvent::CorruptionDetected`] is
//!    structurally sound: it names a swapped copy (a non-resident
//!    anonymous page, a file page's flash read at fault time, or the slot
//!    the immediately-preceding unmap discarded) and fires at most once
//!    per slot; a detected-corrupt slot is never served by a fault or
//!    prefetch and is quarantined before its address is remapped; every
//!    [`AuditEvent::SlotQuarantined`] pairs with exactly one prior
//!    detection on the same tier; a tier is retired at most once, with
//!    the [`AuditEvent::TierRetired`] count matching the observed
//!    quarantines, and no store targets a retired tier (a retired flash
//!    back tier means device degraded mode: no anonymous swap-outs,
//!    proactive or advised or otherwise, and no further writebacks); a
//!    scrub pass never reports more detections than slots scanned, nor
//!    scans more slots than there are swapped anonymous pages.

use crate::event::AuditEvent;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Upper bound accepted for [`AuditEvent::FaultRetry::attempt`]; mirrors
/// `fleet_kernel::FAULT_RETRY_MAX` (this crate is dependency-free, so the
/// constant is duplicated and cross-checked by the kernel's tests).
const FAULT_RETRY_BOUND: u32 = 3;

#[derive(Debug, Clone, Copy)]
struct PageShadow {
    resident: bool,
    file: bool,
    pinned: bool,
}

#[derive(Debug, Default)]
struct GcWindow {
    kind: String,
    complete: bool,
    /// Objects reachable from the roots when the collection started.
    reachable: HashSet<u64>,
    reach_bytes: u64,
    copied_bytes: u64,
    freed_bytes: u64,
    freed_objects: u64,
}

#[derive(Debug, Default)]
struct HeapShadow {
    /// object id -> (size, region)
    objects: HashMap<u64, (u64, u32)>,
    /// Outgoing edges, as a multiset per source object.
    refs: HashMap<u64, Vec<u64>>,
    roots: BTreeSet<u64>,
    /// region id -> live objects it holds
    regions: HashMap<u32, u64>,
    gc: Option<GcWindow>,
}

impl HeapShadow {
    fn reachable(&self) -> (HashSet<u64>, u64) {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut bytes = 0u64;
        let mut stack: Vec<u64> = self.roots.iter().copied().collect();
        while let Some(obj) = stack.pop() {
            if !seen.insert(obj) {
                continue;
            }
            bytes += self.objects.get(&obj).map(|&(size, _)| size).unwrap_or(0);
            if let Some(targets) = self.refs.get(&obj) {
                stack.extend(targets.iter().copied());
            }
        }
        (seen, bytes)
    }
}

#[derive(Debug, Default)]
struct DeviceShadow {
    frames: Option<u64>,
    pages: HashMap<(u32, u64), PageShadow>,
    /// Mapped pages per pid, to make the process-kill leak check O(1).
    pid_pages: HashMap<u32, u64>,
    resident: u64,
    swapped_anon: u64,
    /// Which tier each swapped page's slot lives in, on hybrid stacks.
    /// Flash-only stacks never emit tier events, so this stays empty.
    tiers: HashMap<(u32, u64), &'static str>,
    heaps: HashMap<u32, HeapShadow>,
    /// Open hot-launch windows: pid -> launch-kind faults seen so far.
    launches: HashMap<u32, u64>,
    /// The current foreground pid, tracked from [`AuditEvent::AppState`]
    /// transitions — the process proactive reclaim must never touch.
    foreground: Option<u32>,
    /// Detected-but-unresolved corrupt slots (family 8): page -> the tier
    /// its detection named. Cleared by the matching quarantine; a page in
    /// here may never fault, prefetch or remap.
    corrupt: HashMap<(u32, u64), &'static str>,
    /// Quarantined slot count per tier (family 8), cross-checked against
    /// the count each [`AuditEvent::TierRetired`] reports.
    quarantined: HashMap<&'static str, u64>,
    /// Tiers retired by quarantine saturation (family 8) — at most once
    /// each, and no store may target a retired tier afterwards.
    retired: HashSet<&'static str>,
    /// The most recent swapped-anon unmap, to validate the unmap-path
    /// detection that trails its own [`AuditEvent::PageUnmapped`].
    last_unmapped: Option<(u32, u64)>,
}

/// Rebuilds kernel and heap state purely from the event stream and checks
/// the invariant families online. See the module docs for the list.
#[derive(Debug, Default)]
pub struct Auditor {
    devices: HashMap<u32, DeviceShadow>,
    violations: u64,
}

impl Auditor {
    /// Creates an auditor with no shadow state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of violations reported so far (normally 0 — the pipeline
    /// panics on the first).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Consumes one event, updating shadow state and checking every
    /// invariant the event participates in.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn observe(&mut self, device: u32, event: &AuditEvent) -> Result<(), String> {
        let result = self.observe_inner(device, event);
        if result.is_err() {
            self.violations += 1;
        }
        result
    }

    fn observe_inner(&mut self, device: u32, event: &AuditEvent) -> Result<(), String> {
        use AuditEvent::*;
        let dev = self.devices.entry(device).or_default();
        match event {
            // ------------------------------------------------------ kernel
            PageMapped { pid, page, file } => {
                if dev.corrupt.contains_key(&(*pid, *page)) {
                    return Err(format!(
                        "data integrity: pid {pid} page {page} remapped while its \
                         detected-corrupt slot was never quarantined"
                    ));
                }
                if dev
                    .pages
                    .insert(
                        (*pid, *page),
                        PageShadow { resident: true, file: *file, pinned: false },
                    )
                    .is_some()
                {
                    return Err(format!("double map of pid {pid} page {page}"));
                }
                dev.resident += 1;
                *dev.pid_pages.entry(*pid).or_default() += 1;
                if let Some(frames) = dev.frames {
                    if dev.resident > frames {
                        return Err(format!(
                            "resident pages {} exceed DRAM frames {frames}",
                            dev.resident
                        ));
                    }
                }
            }
            PageUnmapped { pid, page, resident, file } => {
                let Some(shadow) = dev.pages.remove(&(*pid, *page)) else {
                    return Err(format!("unmap of unmapped pid {pid} page {page}"));
                };
                if shadow.resident != *resident || shadow.file != *file {
                    return Err(format!(
                        "unmap of pid {pid} page {page} disagrees with shadow: \
                         event resident={resident} file={file}, shadow resident={} file={}",
                        shadow.resident, shadow.file
                    ));
                }
                if shadow.resident {
                    dev.resident -= 1;
                } else if !shadow.file {
                    dev.swapped_anon -= 1;
                    // The unmap path may report the discarded slot corrupt
                    // right after this event; remember which page it was.
                    dev.last_unmapped = Some((*pid, *page));
                }
                dev.tiers.remove(&(*pid, *page));
                let count = dev.pid_pages.entry(*pid).or_default();
                *count -= 1;
            }
            PageFault { pid, page, file, kind } => {
                if dev.corrupt.contains_key(&(*pid, *page)) {
                    return Err(format!(
                        "data integrity: fault served pid {pid} page {page} from a \
                         detected-corrupt slot"
                    ));
                }
                let Some(shadow) = dev.pages.get_mut(&(*pid, *page)) else {
                    return Err(format!("fault on unmapped pid {pid} page {page}"));
                };
                if shadow.resident {
                    return Err(format!("fault on already-resident pid {pid} page {page}"));
                }
                if shadow.file != *file {
                    return Err(format!("fault kind mismatch on pid {pid} page {page}"));
                }
                shadow.resident = true;
                dev.resident += 1;
                if !*file {
                    dev.swapped_anon -= 1;
                }
                dev.tiers.remove(&(*pid, *page));
                if *kind == "launch" {
                    if let Some(faults) = dev.launches.get_mut(pid) {
                        *faults += 1;
                    }
                }
            }
            SwapOut { pid, page, file, advised } => {
                if !*file && dev.retired.contains("flash") {
                    return Err(format!(
                        "data integrity: anon swap-out of pid {pid} page {page} after the \
                         flash tier was retired (degraded devices stop swapping)"
                    ));
                }
                let Some(shadow) = dev.pages.get_mut(&(*pid, *page)) else {
                    return Err(format!("swap-out of unmapped pid {pid} page {page}"));
                };
                if !shadow.resident {
                    return Err(format!("swap-out of non-resident pid {pid} page {page}"));
                }
                if shadow.file != *file {
                    return Err(format!("swap-out kind mismatch on pid {pid} page {page}"));
                }
                if shadow.pinned && !*advised {
                    return Err(format!("LRU reclaim evicted pinned pid {pid} page {page}"));
                }
                shadow.resident = false;
                dev.resident -= 1;
                if !*file {
                    dev.swapped_anon += 1;
                }
            }
            PagePrefetched { pid, page, file } => {
                if dev.corrupt.contains_key(&(*pid, *page)) {
                    return Err(format!(
                        "data integrity: prefetch served pid {pid} page {page} from a \
                         detected-corrupt slot"
                    ));
                }
                let Some(shadow) = dev.pages.get_mut(&(*pid, *page)) else {
                    return Err(format!("prefetch of unmapped pid {pid} page {page}"));
                };
                if shadow.resident {
                    return Err(format!("prefetch of resident pid {pid} page {page}"));
                }
                if shadow.file != *file {
                    return Err(format!("prefetch kind mismatch on pid {pid} page {page}"));
                }
                shadow.resident = true;
                dev.resident += 1;
                if !*file {
                    dev.swapped_anon -= 1;
                }
                dev.tiers.remove(&(*pid, *page));
            }
            LruPromote { pid, page } => {
                let Some(shadow) = dev.pages.get(&(*pid, *page)) else {
                    return Err(format!("promote of unmapped pid {pid} page {page}"));
                };
                if !shadow.resident {
                    return Err(format!("promote of non-resident pid {pid} page {page}"));
                }
            }
            PagePinned { pid, page } => {
                let Some(shadow) = dev.pages.get_mut(&(*pid, *page)) else {
                    return Err(format!("pin of unmapped pid {pid} page {page}"));
                };
                if shadow.pinned {
                    return Err(format!("double pin of pid {pid} page {page}"));
                }
                shadow.pinned = true;
            }
            PageUnpinned { pid, page } => {
                let Some(shadow) = dev.pages.get_mut(&(*pid, *page)) else {
                    return Err(format!("unpin of unmapped pid {pid} page {page}"));
                };
                if !shadow.pinned {
                    return Err(format!("unpin of unpinned pid {pid} page {page}"));
                }
                shadow.pinned = false;
            }
            Counters { used_frames, swap_used } => {
                if dev.resident != *used_frames {
                    return Err(format!(
                        "page conservation: kernel reports {used_frames} used frames, \
                         events account for {}",
                        dev.resident
                    ));
                }
                if dev.swapped_anon != *swap_used {
                    return Err(format!(
                        "page conservation: kernel reports {swap_used} swap slots used, \
                         events account for {}",
                        dev.swapped_anon
                    ));
                }
            }

            // -------------------------------------------------------- heap
            RegionMapped { pid, region, .. } => {
                let heap = dev.heaps.entry(*pid).or_default();
                if heap.regions.insert(*region, 0).is_some() {
                    return Err(format!("pid {pid}: region {region} mapped twice"));
                }
            }
            RegionFreed { pid, region, .. } => {
                let heap = dev.heaps.entry(*pid).or_default();
                match heap.regions.remove(region) {
                    None => return Err(format!("pid {pid}: freeing unmapped region {region}")),
                    Some(live) if live > 0 => {
                        return Err(format!(
                            "pid {pid}: freeing region {region} that still holds {live} objects"
                        ));
                    }
                    Some(_) => {}
                }
            }
            ObjectAlloc { pid, object, region, size } => {
                let heap = dev.heaps.entry(*pid).or_default();
                let Some(live) = heap.regions.get_mut(region) else {
                    return Err(format!(
                        "pid {pid}: object {object} allocated in unmapped region {region}"
                    ));
                };
                *live += 1;
                if heap.objects.insert(*object, (*size, *region)).is_some() {
                    return Err(format!("pid {pid}: object id {object} allocated twice"));
                }
            }
            ObjectCopied { pid, object, from_region, to_region, size } => {
                let heap = dev.heaps.entry(*pid).or_default();
                let Some(&(shadow_size, shadow_region)) = heap.objects.get(object) else {
                    return Err(format!("pid {pid}: copy of unknown object {object}"));
                };
                if shadow_region != *from_region || shadow_size != *size {
                    return Err(format!(
                        "pid {pid}: copy of object {object} disagrees with shadow \
                         (event from={from_region} size={size}, shadow region={shadow_region} size={shadow_size})"
                    ));
                }
                if !heap.regions.contains_key(to_region) {
                    return Err(format!(
                        "pid {pid}: object {object} copied into unmapped region {to_region}"
                    ));
                }
                heap.objects.insert(*object, (*size, *to_region));
                *heap.regions.entry(*from_region).or_default() -= 1;
                *heap.regions.entry(*to_region).or_default() += 1;
                if let Some(gc) = heap.gc.as_mut() {
                    gc.copied_bytes += size;
                }
            }
            ObjectFreed { pid, object, region, size } => {
                let heap = dev.heaps.entry(*pid).or_default();
                let Some((shadow_size, shadow_region)) = heap.objects.remove(object) else {
                    return Err(format!("pid {pid}: free of unknown object {object}"));
                };
                if shadow_region != *region || shadow_size != *size {
                    return Err(format!(
                        "pid {pid}: free of object {object} disagrees with shadow \
                         (event region={region} size={size}, shadow region={shadow_region} size={shadow_size})"
                    ));
                }
                if heap.roots.contains(object) {
                    return Err(format!("pid {pid}: freed object {object} is still a root"));
                }
                heap.refs.remove(object);
                *heap.regions.entry(*region).or_default() -= 1;
                if let Some(gc) = heap.gc.as_mut() {
                    gc.freed_bytes += size;
                    gc.freed_objects += 1;
                    if gc.reachable.contains(object) {
                        return Err(format!(
                            "GC soundness: pid {pid}: {} GC freed object {object}, which was \
                             reachable from the roots when the collection started",
                            gc.kind
                        ));
                    }
                }
            }
            RefAdded { pid, from, to } => {
                let heap = dev.heaps.entry(*pid).or_default();
                if !heap.objects.contains_key(from) {
                    return Err(format!("pid {pid}: ref from unknown object {from}"));
                }
                if !heap.objects.contains_key(to) {
                    return Err(format!("pid {pid}: ref to unknown object {to}"));
                }
                heap.refs.entry(*from).or_default().push(*to);
            }
            RefRemoved { pid, from, to } => {
                let heap = dev.heaps.entry(*pid).or_default();
                let Some(targets) = heap.refs.get_mut(from) else {
                    return Err(format!("pid {pid}: removing ref from edgeless object {from}"));
                };
                let Some(pos) = targets.iter().position(|t| t == to) else {
                    return Err(format!("pid {pid}: removing nonexistent ref {from} -> {to}"));
                };
                targets.swap_remove(pos);
            }
            RefsCleared { pid, object } => {
                let heap = dev.heaps.entry(*pid).or_default();
                heap.refs.remove(object);
            }
            RootAdded { pid, object } => {
                let heap = dev.heaps.entry(*pid).or_default();
                if !heap.objects.contains_key(object) {
                    return Err(format!("pid {pid}: unknown object {object} added as root"));
                }
                if !heap.roots.insert(*object) {
                    return Err(format!("pid {pid}: object {object} added as root twice"));
                }
            }
            RootRemoved { pid, object } => {
                let heap = dev.heaps.entry(*pid).or_default();
                if !heap.roots.remove(object) {
                    return Err(format!("pid {pid}: removing non-root {object}"));
                }
            }
            GcStart { pid, kind, complete } => {
                let heap = dev.heaps.entry(*pid).or_default();
                if let Some(open) = heap.gc.as_ref() {
                    return Err(format!(
                        "pid {pid}: {kind} GC started while {} GC still open",
                        open.kind
                    ));
                }
                let (reachable, reach_bytes) = heap.reachable();
                heap.gc = Some(GcWindow {
                    kind: kind.clone(),
                    complete: *complete,
                    reachable,
                    reach_bytes,
                    ..GcWindow::default()
                });
            }
            GcEnd { pid, kind, bytes_copied, objects_freed, bytes_freed, .. } => {
                let heap = dev.heaps.entry(*pid).or_default();
                let Some(gc) = heap.gc.take() else {
                    return Err(format!("pid {pid}: {kind} GC ended without a start"));
                };
                if gc.kind != *kind {
                    return Err(format!(
                        "pid {pid}: GC kind mismatch: started {} ended {kind}",
                        gc.kind
                    ));
                }
                if gc.copied_bytes != *bytes_copied {
                    return Err(format!(
                        "GC soundness: pid {pid}: {kind} GC reports {bytes_copied} copied bytes \
                         but events account for {}",
                        gc.copied_bytes
                    ));
                }
                if gc.freed_objects != *objects_freed || gc.freed_bytes != *bytes_freed {
                    return Err(format!(
                        "GC soundness: pid {pid}: {kind} GC reports {objects_freed} freed objects \
                         / {bytes_freed} bytes but events account for {} / {}",
                        gc.freed_objects, gc.freed_bytes
                    ));
                }
                // No dangling references may survive a collection.
                for (from, targets) in &heap.refs {
                    for to in targets {
                        if !heap.objects.contains_key(to) {
                            return Err(format!(
                                "GC soundness: pid {pid}: after {kind} GC, object {from} holds a \
                                 dangling reference to freed object {to}"
                            ));
                        }
                    }
                }
                if gc.complete {
                    // A complete collection leaves exactly the objects that
                    // were reachable at its start, with bytes conserved.
                    if heap.objects.len() as u64 != gc.reachable.len() as u64 {
                        return Err(format!(
                            "GC soundness: pid {pid}: complete {kind} GC left {} objects alive \
                             but {} were reachable at start",
                            heap.objects.len(),
                            gc.reachable.len()
                        ));
                    }
                    let live_bytes: u64 = heap.objects.values().map(|&(size, _)| size).sum();
                    if live_bytes != gc.reach_bytes {
                        return Err(format!(
                            "GC soundness: pid {pid}: complete {kind} GC conserved {live_bytes} \
                             survivor bytes but {} were reachable at start",
                            gc.reach_bytes
                        ));
                    }
                    if let Some(missing) =
                        heap.objects.keys().find(|obj| !gc.reachable.contains(obj))
                    {
                        return Err(format!(
                            "GC soundness: pid {pid}: complete {kind} GC kept object {missing}, \
                             which was unreachable at start"
                        ));
                    }
                }
            }

            // ------------------------------------------------------ device
            DeviceAttached { frames, .. } => {
                dev.frames = Some(*frames);
            }
            ProcessSpawn { pid, .. } => {
                if dev.heaps.insert(*pid, HeapShadow::default()).is_some() {
                    return Err(format!("pid {pid} spawned twice"));
                }
            }
            ProcessKill { pid } => {
                dev.heaps.remove(pid);
                dev.launches.remove(pid);
                if dev.foreground == Some(*pid) {
                    dev.foreground = None;
                }
                let remaining = dev.pid_pages.get(pid).copied().unwrap_or(0);
                if remaining > 0 {
                    return Err(format!(
                        "page conservation: killed pid {pid} leaked {remaining} mapped pages"
                    ));
                }
            }
            AppState { pid, foreground } => {
                if *foreground {
                    dev.foreground = Some(*pid);
                } else if dev.foreground == Some(*pid) {
                    dev.foreground = None;
                }
            }
            LaunchStart { pid } => {
                if dev.launches.insert(*pid, 0).is_some() {
                    return Err(format!("pid {pid}: nested launch window"));
                }
            }
            LaunchEnd { pid, faulted_pages } => {
                let Some(faults) = dev.launches.remove(pid) else {
                    return Err(format!("pid {pid}: launch ended without a start"));
                };
                if faults != *faulted_pages {
                    return Err(format!(
                        "launch accounting: pid {pid}: launch report claims {faulted_pages} \
                         faulted pages but {faults} launch-kind faults were observed"
                    ));
                }
            }

            // -------------------------------------------------- fault events
            SwapIoError { pid, page, op, transient: _ } => {
                let Some(shadow) = dev.pages.get(&(*pid, *page)) else {
                    return Err(format!(
                        "fault resilience: swap I/O error on unmapped pid {pid} page {page}"
                    ));
                };
                match *op {
                    "read" => {
                        if shadow.resident {
                            return Err(format!(
                                "fault resilience: swap read error on resident pid {pid} \
                                 page {page} (nothing was being read from swap)"
                            ));
                        }
                    }
                    "write" | "reserve" => {
                        if !shadow.resident {
                            return Err(format!(
                                "fault resilience: swap {op} error on non-resident pid {pid} \
                                 page {page} (write-backs target resident victims)"
                            ));
                        }
                    }
                    other => {
                        return Err(format!(
                            "fault resilience: unknown swap I/O operation `{other}`"
                        ));
                    }
                }
            }
            FaultRetry { pid, page, attempt } => {
                let Some(shadow) = dev.pages.get(&(*pid, *page)) else {
                    return Err(format!(
                        "fault resilience: retry against unmapped pid {pid} page {page}"
                    ));
                };
                if shadow.resident {
                    return Err(format!(
                        "fault resilience: retry against resident pid {pid} page {page}"
                    ));
                }
                if *attempt == 0 || *attempt > FAULT_RETRY_BOUND {
                    return Err(format!(
                        "fault resilience: retry attempt {attempt} outside the bounded \
                         budget [1, {FAULT_RETRY_BOUND}] for pid {pid} page {page}"
                    ));
                }
            }
            LmkKill { pid, freed_pages: _ } => {
                let remaining = dev.pid_pages.get(pid).copied().unwrap_or(0);
                if remaining > 0 {
                    return Err(format!(
                        "fault resilience: LMK killed pid {pid} but {remaining} of its pages \
                         are still mapped (kills must fully unmap)"
                    ));
                }
            }
            EvacAbort { pid, region, objects_left: _ } => {
                let heap = dev.heaps.entry(*pid).or_default();
                if !heap.regions.contains_key(region) {
                    return Err(format!(
                        "fault resilience: pid {pid}: evacuation abort names unmapped \
                         region {region}"
                    ));
                }
            }

            // --------------------------------------------------- tiered swap
            SwapTierStore { pid, page, tier } => {
                let Some(shadow) = dev.pages.get(&(*pid, *page)) else {
                    return Err(format!(
                        "tier conservation: tier store for unmapped pid {pid} page {page}"
                    ));
                };
                if shadow.resident {
                    return Err(format!(
                        "tier conservation: tier store for resident pid {pid} page {page} \
                         (no swap-out to place)"
                    ));
                }
                if shadow.file {
                    return Err(format!(
                        "tier conservation: tier store for file pid {pid} page {page} \
                         (file pages are dropped, not stored)"
                    ));
                }
                if *tier != "zram" && *tier != "flash" {
                    return Err(format!(
                        "tier conservation: unknown tier `{tier}` for pid {pid} page {page}"
                    ));
                }
                if dev.retired.contains(tier) {
                    return Err(format!(
                        "data integrity: pid {pid} page {page} stored into the retired \
                         {tier} tier"
                    ));
                }
                if let Some(prev) = dev.tiers.insert((*pid, *page), tier) {
                    return Err(format!(
                        "tier conservation: pid {pid} page {page} stored in {tier} while its \
                         slot still lives in {prev} (a swapped page sits in exactly one tier)"
                    ));
                }
            }
            SwapWriteback { pid, page } => {
                if dev.retired.contains("flash") {
                    return Err(format!(
                        "data integrity: writeback of pid {pid} page {page} after the flash \
                         tier was retired"
                    ));
                }
                let Some(shadow) = dev.pages.get(&(*pid, *page)) else {
                    return Err(format!(
                        "tier conservation: writeback of unmapped pid {pid} page {page}"
                    ));
                };
                if shadow.resident {
                    return Err(format!(
                        "tier conservation: writeback of resident pid {pid} page {page}"
                    ));
                }
                match dev.tiers.get_mut(&(*pid, *page)) {
                    Some(tier) if *tier == "zram" => *tier = "flash",
                    Some(tier) => {
                        return Err(format!(
                            "tier conservation: writeback of pid {pid} page {page} whose slot \
                             lives in {tier}, not zram (writeback moves zram slots to flash)"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "tier conservation: writeback of pid {pid} page {page} that holds \
                             no tier slot"
                        ));
                    }
                }
            }

            // ------------------------------------------------ data integrity
            CorruptionDetected { pid, page, tier, source } => {
                if *tier != "zram" && *tier != "flash" {
                    return Err(format!(
                        "data integrity: unknown tier `{tier}` in detection for pid {pid} \
                         page {page}"
                    ));
                }
                match *source {
                    "fault" | "writeback" | "scrub" | "unmap" => {}
                    other => {
                        return Err(format!(
                            "data integrity: unknown detection source `{other}` for \
                             pid {pid} page {page}"
                        ));
                    }
                }
                let key = (*pid, *page);
                match dev.pages.get(&key) {
                    Some(shadow) if shadow.resident => {
                        return Err(format!(
                            "data integrity: detection against resident pid {pid} \
                             page {page} (checksums only cover swapped copies)"
                        ));
                    }
                    Some(shadow) if shadow.file => {
                        // A corrupt file copy is only caught by the demand
                        // fault's flash read; recovery is discard-and-refault,
                        // so no quarantine state to track.
                        if *source != "fault" || *tier != "flash" {
                            return Err(format!(
                                "data integrity: file-page detection for pid {pid} \
                                 page {page} outside the flash fault path \
                                 (tier={tier} source={source})"
                            ));
                        }
                    }
                    Some(_) => {
                        if dev.corrupt.insert(key, tier).is_some() {
                            return Err(format!(
                                "data integrity: pid {pid} page {page} detected corrupt \
                                 twice (detection is exactly-once per slot)"
                            ));
                        }
                    }
                    None => {
                        // Only the unmap path reports after its own
                        // `PageUnmapped`, and only for the slot that event
                        // just discarded.
                        if *source != "unmap" || dev.last_unmapped != Some(key) {
                            return Err(format!(
                                "data integrity: detection against unmapped pid {pid} \
                                 page {page} (source={source})"
                            ));
                        }
                        if dev.corrupt.insert(key, tier).is_some() {
                            return Err(format!(
                                "data integrity: pid {pid} page {page} detected corrupt \
                                 twice (detection is exactly-once per slot)"
                            ));
                        }
                    }
                }
            }
            SlotQuarantined { pid, page, tier } => {
                if *tier != "zram" && *tier != "flash" {
                    return Err(format!(
                        "data integrity: unknown tier `{tier}` in quarantine for \
                         pid {pid} page {page}"
                    ));
                }
                let Some(detected_tier) = dev.corrupt.remove(&(*pid, *page)) else {
                    return Err(format!(
                        "data integrity: pid {pid} page {page} quarantined without a \
                         prior corruption detection"
                    ));
                };
                if detected_tier != *tier {
                    return Err(format!(
                        "data integrity: pid {pid} page {page} quarantined in {tier} but \
                         its detection named {detected_tier}"
                    ));
                }
                *dev.quarantined.entry(tier).or_default() += 1;
            }
            TierRetired { tier, quarantined } => {
                if *tier != "zram" && *tier != "flash" {
                    return Err(format!("data integrity: retirement of unknown tier `{tier}`"));
                }
                if !dev.retired.insert(tier) {
                    return Err(format!("data integrity: {tier} tier retired twice"));
                }
                let seen = dev.quarantined.get(tier).copied().unwrap_or(0);
                if seen != *quarantined {
                    return Err(format!(
                        "data integrity: {tier} retirement reports {quarantined} \
                         quarantined slots but events account for {seen}"
                    ));
                }
            }
            ScrubPass { scanned, detected } => {
                if *detected > *scanned {
                    return Err(format!(
                        "data integrity: scrub pass reports {detected} detections in only \
                         {scanned} scanned slots"
                    ));
                }
                if *scanned > dev.swapped_anon {
                    return Err(format!(
                        "data integrity: scrub pass scanned {scanned} slots but only {} \
                         anonymous pages are swapped",
                        dev.swapped_anon
                    ));
                }
            }

            // ---------------------------------------------- proactive reclaim
            ProactiveSwapOut { pid, page } => {
                if dev.retired.contains("flash") {
                    return Err(format!(
                        "data integrity: proactive swap-out of pid {pid} page {page} after \
                         the flash tier was retired"
                    ));
                }
                if dev.foreground == Some(*pid) {
                    return Err(format!(
                        "proactive reclaim: daemon swapped out pid {pid} page {page} while \
                         that process is the foreground app"
                    ));
                }
                let Some(shadow) = dev.pages.get_mut(&(*pid, *page)) else {
                    return Err(format!(
                        "proactive reclaim: swap-out of unmapped pid {pid} page {page}"
                    ));
                };
                if !shadow.resident {
                    return Err(format!(
                        "proactive reclaim: swap-out of non-resident pid {pid} page {page}"
                    ));
                }
                if shadow.file {
                    return Err(format!(
                        "proactive reclaim: daemon touched file-backed pid {pid} page {page} \
                         (only anonymous pages are proactively swapped)"
                    ));
                }
                if shadow.pinned {
                    return Err(format!(
                        "proactive reclaim: daemon evicted pinned pid {pid} page {page}"
                    ));
                }
                // Frame conservation: the same transition as an unadvised
                // anonymous swap-out, so the `Counters` cross-check holds.
                shadow.resident = false;
                dev.resident -= 1;
                dev.swapped_anon += 1;
            }
            WssSample { pid, pages } => {
                let mapped = dev.pid_pages.get(pid).copied().unwrap_or(0);
                if *pages > mapped {
                    return Err(format!(
                        "proactive reclaim: WSS sample of {pages} pages for pid {pid} exceeds \
                         its {mapped} mapped pages (estimates are capped at the mapped count)"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AuditEvent::*;

    fn feed(auditor: &mut Auditor, events: &[AuditEvent]) -> Result<(), String> {
        for event in events {
            auditor.observe(0, event)?;
        }
        Ok(())
    }

    #[test]
    fn clean_page_lifecycle_passes() {
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                PageFault { pid: 1, page: 0, file: false, kind: "mutator" },
                Counters { used_frames: 1, swap_used: 0 },
                PageUnmapped { pid: 1, page: 0, resident: true, file: false },
                Counters { used_frames: 0, swap_used: 0 },
            ],
        )
        .unwrap();
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn fault_on_resident_page_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                PageFault { pid: 1, page: 0, file: false, kind: "mutator" },
            ],
        )
        .unwrap_err();
        assert!(err.contains("already-resident"), "{err}");
    }

    #[test]
    fn reclaim_of_pinned_page_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                PagePinned { pid: 1, page: 0 },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
            ],
        )
        .unwrap_err();
        assert!(err.contains("pinned"), "{err}");
        // But madvise may swap a pinned page explicitly.
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                PagePinned { pid: 1, page: 0 },
                SwapOut { pid: 1, page: 0, file: false, advised: true },
            ],
        )
        .unwrap();
    }

    #[test]
    fn kill_leaking_pages_is_caught() {
        let mut a = Auditor::new();
        let err =
            feed(&mut a, &[PageMapped { pid: 1, page: 0, file: false }, ProcessKill { pid: 1 }])
                .unwrap_err();
        assert!(err.contains("leaked"), "{err}");
    }

    fn tiny_heap_events() -> Vec<AuditEvent> {
        vec![
            ProcessSpawn { pid: 1, name: "app".into() },
            RegionMapped { pid: 1, region: 0, base: 0, len: 4096, kind: "eden".into() },
            ObjectAlloc { pid: 1, object: 0, region: 0, size: 100 },
            ObjectAlloc { pid: 1, object: 1, region: 0, size: 50 },
            ObjectAlloc { pid: 1, object: 2, region: 0, size: 10 },
            RootAdded { pid: 1, object: 0 },
            RefAdded { pid: 1, from: 0, to: 1 },
        ]
    }

    #[test]
    fn complete_gc_that_frees_garbage_passes() {
        let mut a = Auditor::new();
        let mut events = tiny_heap_events();
        events.extend([
            GcStart { pid: 1, kind: "full".into(), complete: true },
            RegionMapped { pid: 1, region: 1, base: 4096, len: 4096, kind: "fg".into() },
            ObjectCopied { pid: 1, object: 0, from_region: 0, to_region: 1, size: 100 },
            ObjectCopied { pid: 1, object: 1, from_region: 0, to_region: 1, size: 50 },
            ObjectFreed { pid: 1, object: 2, region: 0, size: 10 },
            RegionFreed { pid: 1, region: 0, base: 0, len: 4096 },
            GcEnd {
                pid: 1,
                kind: "full".into(),
                objects_traced: 2,
                bytes_copied: 150,
                objects_freed: 1,
                bytes_freed: 10,
            },
        ]);
        feed(&mut a, &events).unwrap();
    }

    #[test]
    fn freeing_a_reachable_object_is_caught() {
        let mut a = Auditor::new();
        let mut events = tiny_heap_events();
        events.extend([
            GcStart { pid: 1, kind: "full".into(), complete: true },
            ObjectFreed { pid: 1, object: 1, region: 0, size: 50 },
        ]);
        let err = feed(&mut a, &events).unwrap_err();
        assert!(err.contains("reachable"), "{err}");
    }

    #[test]
    fn complete_gc_keeping_garbage_is_caught() {
        let mut a = Auditor::new();
        let mut events = tiny_heap_events();
        events.extend([
            GcStart { pid: 1, kind: "full".into(), complete: true },
            GcEnd {
                pid: 1,
                kind: "full".into(),
                objects_traced: 2,
                bytes_copied: 0,
                objects_freed: 0,
                bytes_freed: 0,
            },
        ]);
        let err = feed(&mut a, &events).unwrap_err();
        assert!(err.contains("reachable at start"), "{err}");
    }

    #[test]
    fn partial_gc_may_keep_floating_garbage() {
        let mut a = Auditor::new();
        let mut events = tiny_heap_events();
        events.extend([
            GcStart { pid: 1, kind: "minor".into(), complete: false },
            GcEnd {
                pid: 1,
                kind: "minor".into(),
                objects_traced: 2,
                bytes_copied: 0,
                objects_freed: 0,
                bytes_freed: 0,
            },
        ]);
        feed(&mut a, &events).unwrap();
    }

    #[test]
    fn launch_fault_miscount_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                LaunchStart { pid: 1 },
                PageFault { pid: 1, page: 0, file: false, kind: "launch" },
                LaunchEnd { pid: 1, faulted_pages: 2 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("launch accounting"), "{err}");
    }

    #[test]
    fn fault_events_in_the_right_states_pass() {
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                FaultRetry { pid: 1, page: 0, attempt: 1 },
                FaultRetry { pid: 1, page: 0, attempt: 2 },
                SwapIoError { pid: 1, page: 0, op: "read", transient: true },
                PageUnmapped { pid: 1, page: 0, resident: false, file: false },
                LmkKill { pid: 1, freed_pages: 0 },
                ProcessKill { pid: 1 },
            ],
        )
        .unwrap();
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn read_error_on_resident_page_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapIoError { pid: 1, page: 0, op: "read", transient: false },
            ],
        )
        .unwrap_err();
        assert!(err.contains("resident"), "{err}");
    }

    #[test]
    fn write_error_on_swapped_page_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapIoError { pid: 1, page: 0, op: "write", transient: true },
            ],
        )
        .unwrap_err();
        assert!(err.contains("non-resident"), "{err}");
    }

    #[test]
    fn retry_past_the_budget_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                FaultRetry { pid: 1, page: 0, attempt: 4 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("bounded"), "{err}");
    }

    #[test]
    fn lmk_kill_with_mapped_pages_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[PageMapped { pid: 1, page: 0, file: false }, LmkKill { pid: 1, freed_pages: 1 }],
        )
        .unwrap_err();
        assert!(err.contains("fully unmap"), "{err}");
    }

    #[test]
    fn evac_abort_of_unknown_region_is_caught() {
        let mut a = Auditor::new();
        let err = feed(&mut a, &[EvacAbort { pid: 1, region: 9, objects_left: 1 }]).unwrap_err();
        assert!(err.contains("unmapped"), "{err}");
    }

    #[test]
    fn tier_slot_lifecycle_passes() {
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapTierStore { pid: 1, page: 0, tier: "zram" },
                SwapWriteback { pid: 1, page: 0 },
                PageFault { pid: 1, page: 0, file: false, kind: "mutator" },
                // After the fault retired the slot, a fresh swap-out may
                // place the page again.
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapTierStore { pid: 1, page: 0, tier: "flash" },
                PageUnmapped { pid: 1, page: 0, resident: false, file: false },
            ],
        )
        .unwrap();
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn duplicate_tier_store_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapTierStore { pid: 1, page: 0, tier: "zram" },
                SwapTierStore { pid: 1, page: 0, tier: "flash" },
            ],
        )
        .unwrap_err();
        assert!(err.contains("exactly one tier"), "{err}");
    }

    #[test]
    fn tier_store_for_resident_page_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapTierStore { pid: 1, page: 0, tier: "zram" },
            ],
        )
        .unwrap_err();
        assert!(err.contains("resident"), "{err}");
    }

    #[test]
    fn writeback_of_flash_slot_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapTierStore { pid: 1, page: 0, tier: "flash" },
                SwapWriteback { pid: 1, page: 0 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("not zram"), "{err}");
        // Double writeback is the same violation: the first move landed the
        // slot in flash.
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapTierStore { pid: 1, page: 0, tier: "zram" },
                SwapWriteback { pid: 1, page: 0 },
                SwapWriteback { pid: 1, page: 0 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("not zram"), "{err}");
    }

    #[test]
    fn writeback_without_a_tier_slot_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapWriteback { pid: 1, page: 0 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("no tier slot"), "{err}");
    }

    #[test]
    fn proactive_swap_out_lifecycle_passes() {
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                PageMapped { pid: 2, page: 0, file: false },
                AppState { pid: 2, foreground: true },
                WssSample { pid: 1, pages: 1 },
                ProactiveSwapOut { pid: 1, page: 0 },
                Counters { used_frames: 1, swap_used: 1 },
                PageFault { pid: 1, page: 0, file: false, kind: "launch" },
                Counters { used_frames: 2, swap_used: 0 },
            ],
        )
        .unwrap();
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn proactive_swap_out_of_foreground_app_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                AppState { pid: 1, foreground: true },
                ProactiveSwapOut { pid: 1, page: 0 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("foreground"), "{err}");
        // Once the app moves to the background the daemon may take it.
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                AppState { pid: 1, foreground: true },
                AppState { pid: 1, foreground: false },
                ProactiveSwapOut { pid: 1, page: 0 },
            ],
        )
        .unwrap();
    }

    #[test]
    fn proactive_swap_out_of_pinned_or_file_page_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                PagePinned { pid: 1, page: 0 },
                ProactiveSwapOut { pid: 1, page: 0 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("pinned"), "{err}");
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[PageMapped { pid: 1, page: 0, file: true }, ProactiveSwapOut { pid: 1, page: 0 }],
        )
        .unwrap_err();
        assert!(err.contains("file-backed"), "{err}");
    }

    #[test]
    fn proactive_swap_out_of_non_resident_page_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                ProactiveSwapOut { pid: 1, page: 0 },
                ProactiveSwapOut { pid: 1, page: 0 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("non-resident"), "{err}");
    }

    #[test]
    fn wss_sample_above_mapped_count_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[PageMapped { pid: 1, page: 0, file: false }, WssSample { pid: 1, pages: 2 }],
        )
        .unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn corruption_ladder_lifecycle_passes() {
        // Detection at fault time, quarantine at unmap, retirement once the
        // count saturates — the clean degradation ladder.
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapTierStore { pid: 1, page: 0, tier: "zram" },
                CorruptionDetected { pid: 1, page: 0, tier: "zram", source: "scrub" },
                PageUnmapped { pid: 1, page: 0, resident: false, file: false },
                SlotQuarantined { pid: 1, page: 0, tier: "zram" },
                TierRetired { tier: "zram", quarantined: 1 },
            ],
        )
        .unwrap();
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn unmap_path_detection_trails_its_own_unmap() {
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 7, file: false },
                SwapOut { pid: 1, page: 7, file: false, advised: false },
                PageUnmapped { pid: 1, page: 7, resident: false, file: false },
                CorruptionDetected { pid: 1, page: 7, tier: "flash", source: "unmap" },
                SlotQuarantined { pid: 1, page: 7, tier: "flash" },
            ],
        )
        .unwrap();
        // But any other source against an unmapped page is a violation.
        let mut a = Auditor::new();
        let err =
            feed(&mut a, &[CorruptionDetected { pid: 1, page: 7, tier: "flash", source: "scrub" }])
                .unwrap_err();
        assert!(err.contains("unmapped"), "{err}");
    }

    #[test]
    fn double_detection_of_one_slot_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                CorruptionDetected { pid: 1, page: 0, tier: "flash", source: "scrub" },
                CorruptionDetected { pid: 1, page: 0, tier: "flash", source: "fault" },
            ],
        )
        .unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn serving_a_detected_corrupt_slot_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                CorruptionDetected { pid: 1, page: 0, tier: "flash", source: "scrub" },
                PageFault { pid: 1, page: 0, file: false, kind: "mutator" },
            ],
        )
        .unwrap_err();
        assert!(err.contains("detected-corrupt"), "{err}");
    }

    #[test]
    fn quarantine_without_detection_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                PageUnmapped { pid: 1, page: 0, resident: false, file: false },
                SlotQuarantined { pid: 1, page: 0, tier: "flash" },
            ],
        )
        .unwrap_err();
        assert!(err.contains("without a prior"), "{err}");
    }

    #[test]
    fn double_tier_retirement_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                TierRetired { tier: "zram", quarantined: 0 },
                TierRetired { tier: "zram", quarantined: 0 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("retired twice"), "{err}");
    }

    #[test]
    fn retirement_count_mismatch_is_caught() {
        let mut a = Auditor::new();
        let err = feed(&mut a, &[TierRetired { tier: "flash", quarantined: 3 }]).unwrap_err();
        assert!(err.contains("events account for 0"), "{err}");
    }

    #[test]
    fn store_into_a_retired_tier_is_caught() {
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                TierRetired { tier: "zram", quarantined: 0 },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapTierStore { pid: 1, page: 0, tier: "zram" },
            ],
        )
        .unwrap_err();
        assert!(err.contains("retired zram tier"), "{err}");
        // A retired flash back tier bans anon swap-outs outright.
        let mut a = Auditor::new();
        let err = feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                TierRetired { tier: "flash", quarantined: 0 },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
            ],
        )
        .unwrap_err();
        assert!(err.contains("degraded"), "{err}");
    }

    #[test]
    fn scrub_detecting_more_than_it_scanned_is_caught() {
        let mut a = Auditor::new();
        let err = feed(&mut a, &[ScrubPass { scanned: 1, detected: 2 }]).unwrap_err();
        assert!(err.contains("in only"), "{err}");
        let mut a = Auditor::new();
        let err = feed(&mut a, &[ScrubPass { scanned: 5, detected: 0 }]).unwrap_err();
        assert!(err.contains("swapped"), "{err}");
    }

    #[test]
    fn gc_faults_do_not_count_against_the_launch() {
        let mut a = Auditor::new();
        feed(
            &mut a,
            &[
                PageMapped { pid: 1, page: 0, file: false },
                PageMapped { pid: 1, page: 1, file: false },
                SwapOut { pid: 1, page: 0, file: false, advised: false },
                SwapOut { pid: 1, page: 1, file: false, advised: false },
                LaunchStart { pid: 1 },
                PageFault { pid: 1, page: 0, file: false, kind: "launch" },
                PageFault { pid: 1, page: 1, file: false, kind: "gc" },
                LaunchEnd { pid: 1, faulted_pages: 1 },
            ],
        )
        .unwrap();
    }
}
