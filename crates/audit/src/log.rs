//! The per-component event buffer mechanism crates emit into.

use crate::event::AuditEvent;

/// A plain event buffer owned by one emitting component (the kernel memory
/// manager, or one process's heap).
///
/// The log is disabled until [`EventLog::enable`] is called, and emission
/// sites pass a closure so the event is only constructed when enabled:
///
/// ```
/// use fleet_audit::{AuditEvent, EventLog};
///
/// let mut log = EventLog::default();
/// log.push(|_| unreachable!("disabled log never builds events"));
/// log.enable(7);
/// log.push(|pid| AuditEvent::RootAdded { pid, object: 1 });
/// assert_eq!(log.drain().len(), 1);
/// ```
///
/// The closure receives the log's *stamped pid*: a heap log is stamped with
/// its owning process id so heap emission sites do not need to know it; the
/// kernel's global log is stamped with 0 and its sites ignore the argument
/// (kernel events carry real pids already).
///
/// Holding events in a plain `Vec` (rather than a shared sink) keeps the
/// owning components `Send` and the emission sites free of locking; the
/// device layer drains logs into the pipeline at deterministic barriers.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    enabled: bool,
    pid: u32,
    events: Vec<AuditEvent>,
}

impl EventLog {
    /// Turns the log on, stamping it with `pid`.
    pub fn enable(&mut self, pid: u32) {
        self.enabled = true;
        self.pid = pid;
    }

    /// Turns the log off (pending events are kept until drained).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether events are currently being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Re-stamps the pid passed to emission closures.
    pub fn set_pid(&mut self, pid: u32) {
        self.pid = pid;
    }

    /// Appends the event built by `build` if the log is enabled.
    #[inline]
    pub fn push(&mut self, build: impl FnOnce(u32) -> AuditEvent) {
        if self.enabled {
            let pid = self.pid;
            self.events.push(build(pid));
        }
    }

    /// Takes all buffered events.
    pub fn drain(&mut self) -> Vec<AuditEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_skips_construction() {
        let mut log = EventLog::default();
        let mut built = false;
        log.push(|_| {
            built = true;
            AuditEvent::ProcessKill { pid: 0 }
        });
        assert!(!built);
        assert!(log.is_empty());
    }

    #[test]
    fn stamped_pid_reaches_the_closure() {
        let mut log = EventLog::default();
        log.enable(42);
        log.push(|pid| AuditEvent::RootAdded { pid, object: 5 });
        log.set_pid(43);
        log.push(|pid| AuditEvent::RootAdded { pid, object: 6 });
        let events = log.drain();
        assert_eq!(
            events,
            vec![
                AuditEvent::RootAdded { pid: 42, object: 5 },
                AuditEvent::RootAdded { pid: 43, object: 6 },
            ]
        );
        assert!(log.is_empty());
    }
}
