//! The flight recorder: canonical serialization, streaming hash, ring
//! buffer of recent events.

use crate::event::AuditEvent;
use std::collections::VecDeque;

/// A hash checkpoint is stored every this many events, so golden-trace
/// divergence can be localized to a block without storing the full stream.
pub const CHECKPOINT_INTERVAL: u64 = 65_536;

/// How many recent events the ring buffer keeps for violation context, and
/// how many head events a trace fingerprint captures verbatim.
pub const RING_CAPACITY: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming fingerprint of an event stream.
///
/// Every event is serialized canonically as `d<device>|<event display>` and
/// folded into an FNV-1a 64-bit hash. The recorder keeps:
///
/// * the running hash and event count,
/// * `(count, hash)` checkpoints every [`CHECKPOINT_INTERVAL`] events,
///   so two diverging streams can be bisected to a block,
/// * the first [`RING_CAPACITY`] serialized events (the *head*), so early
///   divergence is reported as an exact event diff,
/// * a ring of the last [`RING_CAPACITY`] events for panic context.
#[derive(Debug, Default)]
pub struct Recorder {
    hash: u64,
    count: u64,
    checkpoints: Vec<(u64, u64)>,
    head: Vec<String>,
    ring: VecDeque<String>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event into the stream.
    pub fn record(&mut self, device: u32, event: &AuditEvent) {
        let line = format!("d{device}|{event}");
        let mut h = if self.count == 0 { FNV_OFFSET } else { self.hash };
        for byte in line.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(FNV_PRIME);
        self.hash = h;
        self.count += 1;
        if self.count.is_multiple_of(CHECKPOINT_INTERVAL) {
            self.checkpoints.push((self.count, self.hash));
        }
        if self.head.len() < RING_CAPACITY {
            self.head.push(line.clone());
        }
        if self.ring.len() == RING_CAPACITY {
            self.ring.pop_front();
        }
        self.ring.push_back(line);
    }

    /// The running FNV-1a hash over the canonical stream.
    pub fn hash(&self) -> u64 {
        if self.count == 0 {
            FNV_OFFSET
        } else {
            self.hash
        }
    }

    /// Events recorded so far.
    pub fn event_count(&self) -> u64 {
        self.count
    }

    /// `(event_count, hash)` pairs taken every [`CHECKPOINT_INTERVAL`]
    /// events.
    pub fn checkpoints(&self) -> &[(u64, u64)] {
        &self.checkpoints
    }

    /// The first [`RING_CAPACITY`] serialized events.
    pub fn head(&self) -> &[String] {
        &self.head
    }

    /// The last [`RING_CAPACITY`] serialized events, oldest first, one per
    /// line (panic context).
    pub fn ring_dump(&self) -> String {
        let mut out = String::new();
        let first = self.count.saturating_sub(self.ring.len() as u64);
        for (i, line) in self.ring.iter().enumerate() {
            out.push_str(&format!("#{} {}\n", first + i as u64 + 1, line));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(page: u64) -> AuditEvent {
        AuditEvent::PageMapped { pid: 1, page, file: false }
    }

    #[test]
    fn hash_depends_on_order_and_device() {
        let mut a = Recorder::new();
        a.record(0, &ev(1));
        a.record(0, &ev(2));
        let mut b = Recorder::new();
        b.record(0, &ev(2));
        b.record(0, &ev(1));
        assert_ne!(a.hash(), b.hash());
        let mut c = Recorder::new();
        c.record(1, &ev(1));
        c.record(1, &ev(2));
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn ring_keeps_only_recent_events() {
        let mut r = Recorder::new();
        for page in 0..(RING_CAPACITY as u64 + 10) {
            r.record(0, &ev(page));
        }
        let dump = r.ring_dump();
        assert!(!dump.contains("page=9 "), "old events must rotate out");
        assert!(dump.contains(&format!("page={}", RING_CAPACITY + 9)));
        assert_eq!(r.head().len(), RING_CAPACITY);
        assert!(r.head()[0].contains("page=0"));
    }

    #[test]
    fn checkpoints_land_on_the_interval() {
        let mut r = Recorder::new();
        for page in 0..(CHECKPOINT_INTERVAL + 5) {
            r.record(0, &ev(page));
        }
        assert_eq!(r.checkpoints().len(), 1);
        assert_eq!(r.checkpoints()[0].0, CHECKPOINT_INTERVAL);
    }
}
