//! The structured event vocabulary of the flight recorder.

/// One state transition somewhere in the simulated stack.
///
/// Events speak only primitive types so the mechanism crates can emit them
/// without depending on each other: `pid` is the raw process id, `page` a
/// page index (virtual address / 4096), `object`/`region` the heap's
/// allocation-order identifiers. The [`std::fmt::Display`] impl is the
/// *canonical serialization* — golden-trace hashes are computed over it, so
/// its format is append-only: changing an existing line format re-blesses
/// every golden trace.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    // ------------------------------------------------------------- kernel
    /// A page was mapped (starts resident).
    PageMapped {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
        /// File-backed (vs anonymous).
        file: bool,
    },
    /// A page was unmapped, releasing its frame or swap slot.
    PageUnmapped {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
        /// Whether it was resident when unmapped.
        resident: bool,
        /// File-backed (vs anonymous).
        file: bool,
    },
    /// A non-resident page was faulted back in by an access.
    PageFault {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
        /// File-backed (re-read from file) vs anonymous (swap-in).
        file: bool,
        /// Access source: `mutator`, `gc` or `launch`.
        kind: &'static str,
    },
    /// A resident page was pushed out (reclaim or `madvise(COLD_RUNTIME)`).
    SwapOut {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
        /// File-backed pages are dropped; anonymous ones take a swap slot.
        file: bool,
        /// True when requested via madvise (may target pinned pages);
        /// false for LRU reclaim (must never touch pinned pages).
        advised: bool,
    },
    /// A swapped page was brought back by prefetch (not a demand fault).
    PagePrefetched {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
        /// File-backed (vs anonymous).
        file: bool,
    },
    /// `madvise(HOT_RUNTIME)` rotated a resident page to the LRU hot end.
    LruPromote {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
    },
    /// A page was excluded from LRU reclaim (Marvin's pinned Java heap).
    PagePinned {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
    },
    /// A pinned page was returned to LRU control.
    PageUnpinned {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
    },

    // --------------------------------------------------------------- heap
    /// A heap region was mapped.
    RegionMapped {
        /// Owning process.
        pid: u32,
        /// Region id.
        region: u32,
        /// First byte address.
        base: u64,
        /// Length in bytes.
        len: u64,
        /// Region kind name (`eden`, `bg`, `launch`, …).
        kind: String,
    },
    /// An empty heap region was released.
    RegionFreed {
        /// Owning process.
        pid: u32,
        /// Region id.
        region: u32,
        /// First byte address.
        base: u64,
        /// Length in bytes.
        len: u64,
    },
    /// An object was allocated.
    ObjectAlloc {
        /// Owning process.
        pid: u32,
        /// Object id.
        object: u64,
        /// Region holding the object.
        region: u32,
        /// Object size in bytes.
        size: u64,
    },
    /// A collector moved an object (identity preserved).
    ObjectCopied {
        /// Owning process.
        pid: u32,
        /// Object id.
        object: u64,
        /// Region it left.
        from_region: u32,
        /// Region it landed in.
        to_region: u32,
        /// Object size in bytes.
        size: u64,
    },
    /// A dead object was freed.
    ObjectFreed {
        /// Owning process.
        pid: u32,
        /// Object id.
        object: u64,
        /// Region it occupied.
        region: u32,
        /// Object size in bytes.
        size: u64,
    },
    /// A reference edge was added.
    RefAdded {
        /// Owning process.
        pid: u32,
        /// Source object.
        from: u64,
        /// Target object.
        to: u64,
    },
    /// One reference edge was removed.
    RefRemoved {
        /// Owning process.
        pid: u32,
        /// Source object.
        from: u64,
        /// Target object.
        to: u64,
    },
    /// All outgoing edges of an object were dropped.
    RefsCleared {
        /// Owning process.
        pid: u32,
        /// Source object.
        object: u64,
    },
    /// An object became a GC root.
    RootAdded {
        /// Owning process.
        pid: u32,
        /// The root object.
        object: u64,
    },
    /// An object stopped being a GC root.
    RootRemoved {
        /// Owning process.
        pid: u32,
        /// The former root.
        object: u64,
    },
    /// A collection began.
    GcStart {
        /// Owning process.
        pid: u32,
        /// Collector name (`full`, `minor`, `marvin`, `bgc`, `grouping`).
        kind: String,
        /// True when the collection sweeps the whole heap, so everything
        /// unreachable at start must be gone at the end. Partial
        /// collections (minor, BGC, incremental grouping) may retain
        /// floating garbage and only promise never to free live objects.
        complete: bool,
    },
    /// A collection finished.
    GcEnd {
        /// Owning process.
        pid: u32,
        /// Collector name, matching the opening [`AuditEvent::GcStart`].
        kind: String,
        /// Objects traced (reported by the collector, cross-checked).
        objects_traced: u64,
        /// Bytes copied (must equal the sum of `ObjectCopied` sizes).
        bytes_copied: u64,
        /// Objects freed (must equal the `ObjectFreed` count).
        objects_freed: u64,
        /// Bytes freed (must equal the sum of `ObjectFreed` sizes).
        bytes_freed: u64,
    },

    // ------------------------------------------------------------- device
    /// A device joined the pipeline.
    DeviceAttached {
        /// DRAM frames of the device.
        frames: u64,
        /// Swap capacity in pages.
        swap_pages: u64,
    },
    /// A process was created (followed by a synthesized snapshot of its
    /// initial heap: regions, objects, references, roots).
    ProcessSpawn {
        /// The new process.
        pid: u32,
        /// App name.
        name: String,
    },
    /// A process died (explicit kill or LMK); every page and object it
    /// owned must already be gone.
    ProcessKill {
        /// The dead process.
        pid: u32,
    },
    /// A process moved between foreground and background.
    AppState {
        /// The process.
        pid: u32,
        /// True when it became the foreground app.
        foreground: bool,
    },
    /// A hot launch began; until the matching [`AuditEvent::LaunchEnd`],
    /// launch-kind faults of this pid are counted.
    LaunchStart {
        /// The launching process.
        pid: u32,
    },
    /// A hot launch finished.
    LaunchEnd {
        /// The launched process.
        pid: u32,
        /// Faulted pages the launch report claims — must equal the number
        /// of launch-kind [`AuditEvent::PageFault`]s inside the window.
        faulted_pages: u64,
    },
    /// Periodic cross-check of the kernel's own accounting against the
    /// event-derived shadow counts (page conservation).
    Counters {
        /// `MemoryManager::used_frames()` as the kernel reports it.
        used_frames: u64,
        /// `SwapDevice::used_pages()` as the kernel reports it.
        swap_used: u64,
    },

    // ----------------------------------------------------- fault injection
    /// An injected swap I/O error surfaced past the retry budget (reads) or
    /// on first roll (write-backs / reservations). Only emitted on devices
    /// with an armed fault plan.
    SwapIoError {
        /// Process owning the page.
        pid: u32,
        /// Page index.
        page: u64,
        /// Failing operation: `read`, `write` or `reserve`.
        op: &'static str,
        /// True when a retry could have helped (transient), false for a
        /// permanent media error.
        transient: bool,
    },
    /// One bounded retry of a transient swap read error.
    FaultRetry {
        /// Process owning the page.
        pid: u32,
        /// Page index.
        page: u64,
        /// Retry number, 1-based, never above the retry budget.
        attempt: u32,
    },
    /// The low-memory-killer driver killed a process during reclaim
    /// escalation; every page it owned must already be unmapped.
    LmkKill {
        /// The victim.
        pid: u32,
        /// DRAM frames the kill freed.
        freed_pages: u64,
    },
    /// The copying collector aborted evacuation mid-collection (allocation
    /// failure under pressure) and fell back to in-place marking for the
    /// remaining live objects.
    EvacAbort {
        /// Owning process.
        pid: u32,
        /// The region whose evacuation was abandoned.
        region: u32,
        /// Live objects left in place instead of being copied.
        objects_left: u64,
    },

    // -------------------------------------------------------- tiered swap
    /// A swap-out landed in a specific tier of a hybrid stack. Emitted
    /// immediately after the matching [`AuditEvent::SwapOut`], and only on
    /// devices with a zram front tier — flash-only stacks stay silent so
    /// their golden traces are unchanged.
    SwapTierStore {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
        /// Tier the slot lives in: `zram` or `flash`.
        tier: &'static str,
    },
    /// The writeback daemon demoted an aging zram slot to flash. The page
    /// must currently hold a zram slot; afterwards it holds a flash slot —
    /// a move, never a duplicate.
    SwapWriteback {
        /// Owning process.
        pid: u32,
        /// Page index.
        page: u64,
    },

    // ------------------------------------------------------ data integrity
    /// A checksum verification found a silently-corrupted copy (DESIGN.md
    /// §14). Only emitted on devices with the integrity layer armed, and
    /// only for *injected* corruptions — the auditor proves zero false
    /// positives by pairing every detection with exactly one injection.
    CorruptionDetected {
        /// Process owning the page.
        pid: u32,
        /// Page index.
        page: u64,
        /// Tier holding the bad copy: `zram` or `flash`.
        tier: &'static str,
        /// Verification point: `fault` (demand fault-in), `writeback`
        /// (verify-before-retire on zram→flash demotion), `scrub`
        /// (background scrubber) or `unmap` (slot discarded unread).
        source: &'static str,
    },
    /// A corrupt slot was permanently removed from its tier's capacity.
    /// The page must have a prior [`AuditEvent::CorruptionDetected`]; a
    /// quarantined slot is never handed out again.
    SlotQuarantined {
        /// Process that owned the page.
        pid: u32,
        /// Page index.
        page: u64,
        /// Tier losing the slot: `zram` or `flash`.
        tier: &'static str,
    },
    /// Quarantine saturation retired a tier at runtime: a retired zram
    /// front stops accepting stores and drains via writeback; a retired
    /// flash back tier puts the device in degraded mode (no further swap
    /// stores at all). Emitted at most once per tier.
    TierRetired {
        /// The retired tier: `zram` or `flash`.
        tier: &'static str,
        /// Quarantined slots at retirement time.
        quarantined: u64,
    },
    /// The background scrubber verified a batch of cold slots.
    ScrubPass {
        /// Slots verified this pass.
        scanned: u64,
        /// Corruptions found this pass (each also emits its own
        /// [`AuditEvent::CorruptionDetected`]).
        detected: u64,
    },

    // -------------------------------------------------- proactive reclaim
    /// The proactive reclaim daemon (Swam policy) swapped an idle
    /// background app's cold anonymous page out ahead of pressure. The
    /// page must be mapped, resident, anonymous and unpinned, and the pid
    /// must not be the current foreground app; afterwards the page holds a
    /// back-tier swap slot exactly like an unadvised anon
    /// [`AuditEvent::SwapOut`]. Never emitted under the Reactive policy.
    ProactiveSwapOut {
        /// The idle background process.
        pid: u32,
        /// Page index.
        page: u64,
    },
    /// A working-set epoch sampled one process's decayed estimate (Swam
    /// policy). The estimate is capped at the process's mapped page count,
    /// which the auditor cross-checks against its shadow tables.
    WssSample {
        /// The sampled process.
        pid: u32,
        /// Decayed working-set estimate in pages.
        pages: u64,
    },
}

impl std::fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use AuditEvent::*;
        match self {
            PageMapped { pid, page, file } => {
                write!(f, "page_mapped pid={pid} page={page} file={file}")
            }
            PageUnmapped { pid, page, resident, file } => {
                write!(f, "page_unmapped pid={pid} page={page} resident={resident} file={file}")
            }
            PageFault { pid, page, file, kind } => {
                write!(f, "page_fault pid={pid} page={page} file={file} kind={kind}")
            }
            SwapOut { pid, page, file, advised } => {
                write!(f, "swap_out pid={pid} page={page} file={file} advised={advised}")
            }
            PagePrefetched { pid, page, file } => {
                write!(f, "page_prefetched pid={pid} page={page} file={file}")
            }
            LruPromote { pid, page } => write!(f, "lru_promote pid={pid} page={page}"),
            PagePinned { pid, page } => write!(f, "page_pinned pid={pid} page={page}"),
            PageUnpinned { pid, page } => write!(f, "page_unpinned pid={pid} page={page}"),
            RegionMapped { pid, region, base, len, kind } => {
                write!(
                    f,
                    "region_mapped pid={pid} region={region} base={base} len={len} kind={kind}"
                )
            }
            RegionFreed { pid, region, base, len } => {
                write!(f, "region_freed pid={pid} region={region} base={base} len={len}")
            }
            ObjectAlloc { pid, object, region, size } => {
                write!(f, "object_alloc pid={pid} object={object} region={region} size={size}")
            }
            ObjectCopied { pid, object, from_region, to_region, size } => {
                write!(
                    f,
                    "object_copied pid={pid} object={object} from={from_region} to={to_region} size={size}"
                )
            }
            ObjectFreed { pid, object, region, size } => {
                write!(f, "object_freed pid={pid} object={object} region={region} size={size}")
            }
            RefAdded { pid, from, to } => write!(f, "ref_added pid={pid} from={from} to={to}"),
            RefRemoved { pid, from, to } => write!(f, "ref_removed pid={pid} from={from} to={to}"),
            RefsCleared { pid, object } => write!(f, "refs_cleared pid={pid} object={object}"),
            RootAdded { pid, object } => write!(f, "root_added pid={pid} object={object}"),
            RootRemoved { pid, object } => write!(f, "root_removed pid={pid} object={object}"),
            GcStart { pid, kind, complete } => {
                write!(f, "gc_start pid={pid} kind={kind} complete={complete}")
            }
            GcEnd { pid, kind, objects_traced, bytes_copied, objects_freed, bytes_freed } => {
                write!(
                    f,
                    "gc_end pid={pid} kind={kind} traced={objects_traced} copied_bytes={bytes_copied} freed={objects_freed} freed_bytes={bytes_freed}"
                )
            }
            DeviceAttached { frames, swap_pages } => {
                write!(f, "device_attached frames={frames} swap_pages={swap_pages}")
            }
            ProcessSpawn { pid, name } => write!(f, "process_spawn pid={pid} name={name}"),
            ProcessKill { pid } => write!(f, "process_kill pid={pid}"),
            AppState { pid, foreground } => {
                write!(f, "app_state pid={pid} foreground={foreground}")
            }
            LaunchStart { pid } => write!(f, "launch_start pid={pid}"),
            LaunchEnd { pid, faulted_pages } => {
                write!(f, "launch_end pid={pid} faulted={faulted_pages}")
            }
            Counters { used_frames, swap_used } => {
                write!(f, "counters used_frames={used_frames} swap_used={swap_used}")
            }
            SwapIoError { pid, page, op, transient } => {
                write!(f, "swap_io_error pid={pid} page={page} op={op} transient={transient}")
            }
            FaultRetry { pid, page, attempt } => {
                write!(f, "fault_retry pid={pid} page={page} attempt={attempt}")
            }
            LmkKill { pid, freed_pages } => {
                write!(f, "lmk_kill pid={pid} freed_pages={freed_pages}")
            }
            EvacAbort { pid, region, objects_left } => {
                write!(f, "evac_abort pid={pid} region={region} objects_left={objects_left}")
            }
            SwapTierStore { pid, page, tier } => {
                write!(f, "swap_tier_store pid={pid} page={page} tier={tier}")
            }
            SwapWriteback { pid, page } => {
                write!(f, "swap_writeback pid={pid} page={page}")
            }
            CorruptionDetected { pid, page, tier, source } => {
                write!(f, "corruption_detected pid={pid} page={page} tier={tier} source={source}")
            }
            SlotQuarantined { pid, page, tier } => {
                write!(f, "slot_quarantined pid={pid} page={page} tier={tier}")
            }
            TierRetired { tier, quarantined } => {
                write!(f, "tier_retired tier={tier} quarantined={quarantined}")
            }
            ScrubPass { scanned, detected } => {
                write!(f, "scrub_pass scanned={scanned} detected={detected}")
            }
            ProactiveSwapOut { pid, page } => {
                write!(f, "proactive_swap_out pid={pid} page={page}")
            }
            WssSample { pid, pages } => {
                write!(f, "wss_sample pid={pid} pages={pages}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_format_is_stable() {
        // These strings are hashed into committed golden traces; treat the
        // format as append-only.
        let cases: Vec<(AuditEvent, &str)> = vec![
            (
                AuditEvent::PageMapped { pid: 3, page: 17, file: true },
                "page_mapped pid=3 page=17 file=true",
            ),
            (
                AuditEvent::PageFault { pid: 1, page: 2, file: false, kind: "launch" },
                "page_fault pid=1 page=2 file=false kind=launch",
            ),
            (
                AuditEvent::GcStart { pid: 9, kind: "full".into(), complete: true },
                "gc_start pid=9 kind=full complete=true",
            ),
            (AuditEvent::LaunchEnd { pid: 4, faulted_pages: 12 }, "launch_end pid=4 faulted=12"),
            (
                AuditEvent::SwapIoError { pid: 2, page: 40, op: "read", transient: true },
                "swap_io_error pid=2 page=40 op=read transient=true",
            ),
            (
                AuditEvent::FaultRetry { pid: 2, page: 40, attempt: 3 },
                "fault_retry pid=2 page=40 attempt=3",
            ),
            (AuditEvent::LmkKill { pid: 6, freed_pages: 512 }, "lmk_kill pid=6 freed_pages=512"),
            (
                AuditEvent::EvacAbort { pid: 5, region: 7, objects_left: 19 },
                "evac_abort pid=5 region=7 objects_left=19",
            ),
            (
                AuditEvent::SwapTierStore { pid: 1, page: 33, tier: "zram" },
                "swap_tier_store pid=1 page=33 tier=zram",
            ),
            (AuditEvent::SwapWriteback { pid: 1, page: 33 }, "swap_writeback pid=1 page=33"),
            (AuditEvent::ProactiveSwapOut { pid: 8, page: 21 }, "proactive_swap_out pid=8 page=21"),
            (AuditEvent::WssSample { pid: 8, pages: 640 }, "wss_sample pid=8 pages=640"),
            (
                AuditEvent::CorruptionDetected { pid: 4, page: 99, tier: "flash", source: "fault" },
                "corruption_detected pid=4 page=99 tier=flash source=fault",
            ),
            (
                AuditEvent::SlotQuarantined { pid: 4, page: 99, tier: "flash" },
                "slot_quarantined pid=4 page=99 tier=flash",
            ),
            (
                AuditEvent::TierRetired { tier: "zram", quarantined: 16 },
                "tier_retired tier=zram quarantined=16",
            ),
            (
                AuditEvent::ScrubPass { scanned: 64, detected: 2 },
                "scrub_pass scanned=64 detected=2",
            ),
        ];
        for (event, expect) in cases {
            assert_eq!(event.to_string(), expect);
        }
    }
}
