//! Property tests on the simulation substrate.

use fleet_sim::{EventQueue, Exponential, SimDuration, SimRng, SimTime, SizeDistribution, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn event_queue_pops_sorted_and_stable(
        events in proptest::collection::vec((0u64..1000, 0u32..1000), 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &(at, tag)) in events.iter().enumerate() {
            q.schedule(SimTime::from_millis(at), (tag, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (_, seq))) = q.pop() {
            if let Some((prev_at, prev_seq)) = last {
                prop_assert!(at >= prev_at, "time order violated");
                if at == prev_at {
                    prop_assert!(seq > prev_seq, "FIFO tie-break violated");
                }
            }
            last = Some((at, seq));
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da + db, SimDuration::from_nanos(a + b));
        prop_assert_eq!((da + db) - db, da);
        prop_assert_eq!(da.saturating_sub(da + db), SimDuration::ZERO);
        prop_assert_eq!(da.max(db).as_nanos(), a.max(b));
        prop_assert_eq!(da.min(db).as_nanos(), a.min(b));
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut fa = a.fork();
        let mut fb = b.fork();
        prop_assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn size_distribution_samples_configured_sizes(
        buckets in proptest::collection::vec((1u32..16384, 0.1f64..100.0), 1..12),
        seed in any::<u64>(),
    ) {
        let dist = SizeDistribution::new(buckets.clone()).unwrap();
        let sizes: Vec<u32> = buckets.iter().map(|&(s, _)| s).collect();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..200 {
            let s = dist.sample(&mut rng);
            prop_assert!(sizes.contains(&s), "sampled unconfigured size {s}");
        }
        let mean = dist.mean();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        // Small float slack: weighted means of equal sizes can land
        // epsilon outside the bucket range.
        prop_assert!(mean >= min * (1.0 - 1e-9) && mean <= max * (1.0 + 1e-9));
    }

    #[test]
    fn exponential_is_nonnegative(mean in 0.001f64..1e6, seed in any::<u64>()) {
        let exp = Exponential::with_mean(mean).unwrap();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(exp.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn zipf_stays_in_range_and_prefers_low_ranks(n in 2usize..500, seed in any::<u64>()) {
        let z = Zipf::new(n, 1.0).unwrap();
        let mut rng = SimRng::seed_from(seed);
        let mut low = 0;
        let samples = 400;
        for _ in 0..samples {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            if r < n.div_ceil(2) {
                low += 1;
            }
        }
        // The lower half of the ranks receives more than half the mass.
        prop_assert!(low * 2 >= samples, "low-rank mass {low}/{samples}");
    }
}
