//! Virtual time: [`SimTime`], [`SimDuration`] and the simulation [`Clock`].
//!
//! All latencies in the simulator (swap faults, GC pauses, frame deadlines,
//! launch times) are expressed in these units. The representation is a `u64`
//! nanosecond count, which covers ~584 years of simulated time — far beyond
//! any experiment in the paper (the longest run is a 600-second trace).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation timeline, measured from the start of the run.
///
/// # Examples
///
/// ```
/// use fleet_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(53);
/// assert_eq!(t.as_secs_f64(), 53.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time.
///
/// # Examples
///
/// ```
/// use fleet_sim::SimDuration;
///
/// let fault = SimDuration::from_micros(192);
/// assert_eq!(fault * 10, SimDuration::from_micros(1920));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds since the start of the run.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds since the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the run as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be a finite non-negative number");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true for the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; clamps at zero rather than wrapping.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative float (rounding to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

/// The simulation clock. Time only moves when a component calls
/// [`Clock::advance`] or [`Clock::advance_to`].
///
/// # Examples
///
/// ```
/// use fleet_sim::{Clock, SimDuration, SimTime};
///
/// let mut clock = Clock::new();
/// clock.advance(SimDuration::from_secs(10));
/// clock.advance_to(SimTime::from_secs(8)); // never goes backwards
/// assert_eq!(clock.now(), SimTime::from_secs(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward by `dt`.
    pub fn advance(&mut self, dt: SimDuration) {
        self.now += dt;
    }

    /// Moves the clock forward to `t`; does nothing if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.as_millis(), 1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2, SimTime::from_secs(2));
        assert_eq!(t2 - t, SimDuration::from_millis(500));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(SimTime::from_secs(1).since(SimTime::from_secs(5)), SimDuration::ZERO);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_secs(3));
        c.advance_to(SimTime::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(3));
        c.advance_to(SimTime::from_secs(4));
        assert_eq!(c.now(), SimTime::from_secs(4));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn scaling_rounds_to_nanoseconds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.26), SimDuration::from_nanos(3));
        assert_eq!(d * 3, SimDuration::from_nanos(30));
        assert_eq!(d / 2, SimDuration::from_nanos(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
