//! Deterministic simulation substrate for the Fleet reproduction.
//!
//! The paper ("More Apps, Faster Hot-Launch on Mobile Devices via
//! Fore/Background-aware GC-Swap Co-design", ASPLOS '24) evaluates on a real
//! Pixel 3. This workspace reproduces the system as a deterministic
//! discrete-event simulator; this crate provides the three primitives every
//! other layer builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock
//!   ([`Clock`]) that only moves when the simulation says so,
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`SimRng`] and the [`dist`] module — seeded randomness and the
//!   size/latency distributions used by the app behaviour models.
//!
//! Everything here is deliberately free of wall-clock time and global state:
//! two runs with the same seed produce bit-identical traces, which the
//! integration tests assert.
//!
//! # Examples
//!
//! ```
//! use fleet_sim::{Clock, SimDuration};
//!
//! let mut clock = Clock::new();
//! clock.advance(SimDuration::from_millis(273));
//! assert_eq!(clock.now().as_millis(), 273);
//! ```

#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod rng;
pub mod time;

pub use dist::{Exponential, LogNormal, SizeDistribution, Zipf};
pub use event::EventQueue;
pub use rng::SimRng;
pub use time::{Clock, SimDuration, SimTime};
