//! Seeded randomness for deterministic runs.
//!
//! Every stochastic decision in the simulator (object sizes, access sampling,
//! launch jitter) flows through a [`SimRng`], which wraps a fixed-algorithm
//! PRNG. The wrapper also carries the convenience sampling methods the app
//! behaviour models need, so call sites stay terse.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator.
///
/// Two `SimRng`s created from the same seed produce identical streams, and
/// [`SimRng::fork`] derives an independent child stream so sub-components can
/// consume randomness without perturbing each other.
///
/// # Examples
///
/// ```
/// use fleet_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from this generator's stream, so forking is itself
    /// deterministic but the two streams do not overlap in practice.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.gen::<u64>() ^ 0x9e37_79b9_7f4a_7c15;
        SimRng::seed_from(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick an index from an empty collection");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid uniform range {lo}..{hi}");
        lo + self.unit() * (hi - lo)
    }

    /// A standard normal sample (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing from (0, 1].
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Picks a uniformly random element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_deterministic_but_distinct() {
        let mut root1 = SimRng::seed_from(1);
        let mut root2 = SimRng::seed_from(1);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Child stream differs from the parent's continuation.
        assert_ne!(root1.next_u64(), c1.next_u64());
    }

    #[test]
    fn chance_edge_cases() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..10_000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = SimRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = SimRng::seed_from(2);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert!(r.choose(&[1, 2, 3]).is_some());
    }
}
