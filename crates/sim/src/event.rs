//! A stable timestamped event queue.
//!
//! Discrete-event drivers in the core crate schedule app-state transitions,
//! GC checks and scheme timers through this queue. Ties on the timestamp are
//! broken by insertion order (FIFO), which keeps runs deterministic no matter
//! how events happen to collide.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties, the
        // first-inserted) entry surfaces first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of `(SimTime, E)` pairs.
///
/// # Examples
///
/// ```
/// use fleet_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "gc-check");
/// q.schedule(SimTime::from_secs(1), "switch-to-background");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "switch-to-background"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Removes and returns the earliest event if it fires at or before `t`.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().is_some_and(|e| e.at <= t) {
            self.pop()
        } else {
            None
        }
    }

    /// The timestamp of the next event, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "later");
        assert!(q.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(q.pop_due(SimTime::from_secs(5)).unwrap().1, "later");
        assert!(q.is_empty());
    }

    #[test]
    fn next_at_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_at(), None);
        q.schedule(SimTime::from_secs(9), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.next_at(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }
}
