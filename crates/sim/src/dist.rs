//! Sampling distributions used by the workload models.
//!
//! Figure 7 of the paper shows that Android objects are overwhelmingly much
//! smaller than a 4 KiB page; [`SizeDistribution`] encodes exactly such
//! bucketed CDFs. [`LogNormal`], [`Exponential`] and [`Zipf`] cover launch
//! jitter, inter-arrival gaps and skewed access popularity respectively.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A discrete distribution over size buckets, described by `(size, weight)`
/// pairs. Sampling returns one of the configured sizes with probability
/// proportional to its weight.
///
/// # Examples
///
/// ```
/// use fleet_sim::{SimRng, SizeDistribution};
///
/// // Mostly 32-byte objects, occasionally 4 KiB ones.
/// let dist = SizeDistribution::new(vec![(32, 95.0), (4096, 5.0)]).unwrap();
/// let mut rng = SimRng::seed_from(1);
/// let s = dist.sample(&mut rng);
/// assert!(s == 32 || s == 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SizeDistribution {
    buckets: Vec<(u32, f64)>,
    total_weight: f64,
}

// Serialised as the bare bucket list (upstream: `#[serde(into/try_from =
// "Vec<(u32, f64)>")]`); hand-written because the vendored serde_derive
// does not support container attributes.
impl Serialize for SizeDistribution {
    fn to_value(&self) -> serde::Value {
        self.buckets.to_value()
    }
}

impl Deserialize for SizeDistribution {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let buckets = Vec::<(u32, f64)>::from_value(v)?;
        SizeDistribution::try_from(buckets).map_err(serde::DeError::custom)
    }
}

impl From<SizeDistribution> for Vec<(u32, f64)> {
    fn from(dist: SizeDistribution) -> Self {
        dist.buckets
    }
}

impl TryFrom<Vec<(u32, f64)>> for SizeDistribution {
    type Error = DistError;
    fn try_from(buckets: Vec<(u32, f64)>) -> Result<Self, DistError> {
        SizeDistribution::new(buckets)
    }
}

/// Error returned when a [`SizeDistribution`] cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// No buckets were supplied.
    Empty,
    /// A weight was negative, NaN, or the total weight was zero.
    BadWeight,
    /// A bucket size was zero.
    ZeroSize,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Empty => write!(f, "distribution has no buckets"),
            DistError::BadWeight => {
                write!(f, "bucket weights must be non-negative and sum to a positive value")
            }
            DistError::ZeroSize => write!(f, "bucket sizes must be positive"),
        }
    }
}

impl std::error::Error for DistError {}

impl SizeDistribution {
    /// Builds a distribution from `(size_bytes, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if no buckets are given, any size is zero, any
    /// weight is negative/NaN, or all weights are zero.
    pub fn new(buckets: Vec<(u32, f64)>) -> Result<Self, DistError> {
        if buckets.is_empty() {
            return Err(DistError::Empty);
        }
        let mut total = 0.0;
        for &(size, w) in &buckets {
            if size == 0 {
                return Err(DistError::ZeroSize);
            }
            if !w.is_finite() || w < 0.0 {
                return Err(DistError::BadWeight);
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(DistError::BadWeight);
        }
        Ok(SizeDistribution { buckets, total_weight: total })
    }

    /// A distribution that always returns `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn constant(size: u32) -> Self {
        SizeDistribution::new(vec![(size, 1.0)]).expect("constant size must be positive")
    }

    /// Samples a size in bytes.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let mut x = rng.unit() * self.total_weight;
        for &(size, w) in &self.buckets {
            if x < w {
                return size;
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last bucket.
        self.buckets.last().expect("non-empty by construction").0
    }

    /// The expected (mean) size in bytes.
    pub fn mean(&self) -> f64 {
        self.buckets.iter().map(|&(s, w)| s as f64 * w).sum::<f64>() / self.total_weight
    }

    /// Fraction of sampled objects with size `<= limit` (the CDF at `limit`).
    pub fn cdf_at(&self, limit: u32) -> f64 {
        self.buckets.iter().filter(|&&(s, _)| s <= limit).map(|&(_, w)| w).sum::<f64>()
            / self.total_weight
    }

    /// The configured `(size, weight)` buckets.
    pub fn buckets(&self) -> &[(u32, f64)] {
        &self.buckets
    }
}

/// An exponential distribution with the given mean, for inter-arrival gaps.
///
/// # Examples
///
/// ```
/// use fleet_sim::{Exponential, SimRng};
///
/// let gaps = Exponential::with_mean(100.0).unwrap();
/// let mut rng = SimRng::seed_from(0);
/// assert!(gaps.sample(&mut rng) >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates a distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadWeight`] if `mean` is not a positive finite number.
    pub fn with_mean(mean: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(DistError::BadWeight);
        }
        Ok(Exponential { mean })
    }

    /// Samples a non-negative value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * (1.0 - rng.unit()).ln()
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// A log-normal distribution parameterised by the location `mu` and scale
/// `sigma` of the underlying normal. Used for launch-time jitter, which is
/// right-skewed on real devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters `(mu, sigma)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadWeight`] if `sigma` is negative or either
    /// parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(DistError::BadWeight);
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal whose *median* is `median` with shape `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadWeight`] if `median` is not positive finite or
    /// `sigma` is negative.
    pub fn with_median(median: f64, sigma: f64) -> Result<Self, DistError> {
        if !median.is_finite() || median <= 0.0 {
            return Err(DistError::BadWeight);
        }
        LogNormal::new(median.ln(), sigma)
    }

    /// Samples a positive value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }

    /// The distribution's median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// A Zipf distribution over ranks `0..n`, used to model skewed object access
/// popularity (a few objects are touched constantly, the tail rarely).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    n: usize,
    exponent: f64,
    /// Cumulative weights, one per rank, normalised to end at 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with the given exponent.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Empty`] when `n == 0` and
    /// [`DistError::BadWeight`] when the exponent is negative or not finite.
    pub fn new(n: usize, exponent: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::Empty);
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(DistError::BadWeight);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { n, exponent, cdf })
    }

    /// Samples a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let x = rng.unit();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&x).expect("cdf has no NaN")) {
            Ok(i) => (i + 1).min(self.n - 1),
            Err(i) => i.min(self.n - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: a `Zipf` has at least one rank by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_distribution_respects_weights() {
        let dist = SizeDistribution::new(vec![(16, 90.0), (1024, 10.0)]).unwrap();
        let mut rng = SimRng::seed_from(4);
        let n = 50_000;
        let small = (0..n).filter(|_| dist.sample(&mut rng) == 16).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "small fraction {frac}");
    }

    #[test]
    fn size_distribution_rejects_bad_input() {
        assert_eq!(SizeDistribution::new(vec![]).unwrap_err(), DistError::Empty);
        assert_eq!(SizeDistribution::new(vec![(0, 1.0)]).unwrap_err(), DistError::ZeroSize);
        assert_eq!(SizeDistribution::new(vec![(8, -1.0)]).unwrap_err(), DistError::BadWeight);
        assert_eq!(SizeDistribution::new(vec![(8, 0.0)]).unwrap_err(), DistError::BadWeight);
    }

    #[test]
    fn size_distribution_mean_and_cdf() {
        let dist = SizeDistribution::new(vec![(10, 1.0), (30, 1.0)]).unwrap();
        assert!((dist.mean() - 20.0).abs() < 1e-9);
        assert!((dist.cdf_at(10) - 0.5).abs() < 1e-9);
        assert!((dist.cdf_at(9) - 0.0).abs() < 1e-9);
        assert!((dist.cdf_at(4096) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_distribution() {
        let dist = SizeDistribution::constant(512);
        let mut rng = SimRng::seed_from(0);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 512);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let exp = Exponential::with_mean(50.0).unwrap();
        let mut rng = SimRng::seed_from(8);
        let n = 30_000;
        let mean = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean {mean}");
        assert!(Exponential::with_mean(0.0).is_err());
        assert!(Exponential::with_mean(f64::NAN).is_err());
    }

    #[test]
    fn lognormal_median_is_close() {
        let ln = LogNormal::with_median(200.0, 0.3).unwrap();
        assert!((ln.median() - 200.0).abs() < 1e-6);
        let mut rng = SimRng::seed_from(12);
        let mut samples: Vec<f64> = (0..10_001).map(|_| ln.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median - 200.0).abs() / 200.0 < 0.05, "median {median}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = SimRng::seed_from(6);
        let n = 20_000;
        let rank0 = (0..n).filter(|_| z.sample(&mut rng) == 0).count() as f64 / n as f64;
        // Harmonic normalisation: P(rank 0) = 1 / H_1000 ≈ 0.133.
        assert!((rank0 - 0.133).abs() < 0.02, "rank0 {rank0}");
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let z = Zipf::new(7, 0.8).unwrap();
        let mut rng = SimRng::seed_from(13);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }
}
