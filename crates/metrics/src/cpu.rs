//! CPU-time accounting by thread class.
//!
//! §7.3 of the paper compares total CPU time across schemes and attributes
//! most of the overhead to GC threads ("Fleet incurs an additional 0.16% CPU
//! time compared to Android on average"). [`CpuAccounting`] tracks simulated
//! CPU time per [`ThreadClass`] so the experiment driver can report the same
//! breakdown.

use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Classification of who consumed CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadClass {
    /// Application (mutator) threads.
    Mutator,
    /// The garbage-collector thread.
    Gc,
    /// Kernel work on behalf of the process (reclaim, swap I/O management).
    Kernel,
}

impl ThreadClass {
    /// All classes, in reporting order.
    pub const ALL: [ThreadClass; 3] = [ThreadClass::Mutator, ThreadClass::Gc, ThreadClass::Kernel];
}

impl std::fmt::Display for ThreadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadClass::Mutator => write!(f, "mutator"),
            ThreadClass::Gc => write!(f, "gc"),
            ThreadClass::Kernel => write!(f, "kernel"),
        }
    }
}

/// Accumulated CPU time per thread class.
///
/// # Examples
///
/// ```
/// use fleet_metrics::{CpuAccounting, ThreadClass};
/// use fleet_sim::SimDuration;
///
/// let mut cpu = CpuAccounting::new();
/// cpu.charge(ThreadClass::Mutator, SimDuration::from_millis(900));
/// cpu.charge(ThreadClass::Gc, SimDuration::from_millis(100));
/// assert!((cpu.share_percent(ThreadClass::Gc) - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuAccounting {
    mutator: SimDuration,
    gc: SimDuration,
    kernel: SimDuration,
}

impl CpuAccounting {
    /// Creates an empty accounting record.
    pub fn new() -> Self {
        CpuAccounting::default()
    }

    /// Charges `dt` of CPU time to `class`.
    pub fn charge(&mut self, class: ThreadClass, dt: SimDuration) {
        *self.slot_mut(class) += dt;
    }

    fn slot_mut(&mut self, class: ThreadClass) -> &mut SimDuration {
        match class {
            ThreadClass::Mutator => &mut self.mutator,
            ThreadClass::Gc => &mut self.gc,
            ThreadClass::Kernel => &mut self.kernel,
        }
    }

    /// CPU time charged to `class`.
    pub fn time(&self, class: ThreadClass) -> SimDuration {
        match class {
            ThreadClass::Mutator => self.mutator,
            ThreadClass::Gc => self.gc,
            ThreadClass::Kernel => self.kernel,
        }
    }

    /// Total CPU time across all classes.
    pub fn total(&self) -> SimDuration {
        self.mutator + self.gc + self.kernel
    }

    /// Percentage of total CPU time consumed by `class` (0 when idle).
    pub fn share_percent(&self, class: ThreadClass) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            0.0
        } else {
            100.0 * self.time(class).as_nanos() as f64 / total as f64
        }
    }

    /// Merges another accounting record into this one.
    pub fn merge(&mut self, other: &CpuAccounting) {
        self.mutator += other.mutator;
        self.gc += other.gc;
        self.kernel += other.kernel;
    }

    /// Relative total-CPU difference versus a baseline, in percent
    /// (positive = this record used more CPU). Returns 0 when the baseline
    /// is idle.
    pub fn overhead_vs_percent(&self, baseline: &CpuAccounting) -> f64 {
        let base = baseline.total().as_nanos();
        if base == 0 {
            0.0
        } else {
            let this = self.total().as_nanos();
            100.0 * (this as f64 - base as f64) / base as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_class() {
        let mut cpu = CpuAccounting::new();
        cpu.charge(ThreadClass::Mutator, SimDuration::from_millis(10));
        cpu.charge(ThreadClass::Mutator, SimDuration::from_millis(5));
        cpu.charge(ThreadClass::Gc, SimDuration::from_millis(3));
        cpu.charge(ThreadClass::Kernel, SimDuration::from_millis(2));
        assert_eq!(cpu.time(ThreadClass::Mutator), SimDuration::from_millis(15));
        assert_eq!(cpu.total(), SimDuration::from_millis(20));
    }

    #[test]
    fn shares_sum_to_100() {
        let mut cpu = CpuAccounting::new();
        for class in ThreadClass::ALL {
            cpu.charge(class, SimDuration::from_millis(10));
        }
        let sum: f64 = ThreadClass::ALL.iter().map(|&c| cpu.share_percent(c)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn idle_record_has_zero_shares() {
        let cpu = CpuAccounting::new();
        assert_eq!(cpu.share_percent(ThreadClass::Gc), 0.0);
        assert_eq!(cpu.overhead_vs_percent(&CpuAccounting::new()), 0.0);
    }

    #[test]
    fn overhead_vs_baseline() {
        let mut base = CpuAccounting::new();
        base.charge(ThreadClass::Mutator, SimDuration::from_millis(100));
        let mut mine = CpuAccounting::new();
        mine.charge(ThreadClass::Mutator, SimDuration::from_millis(100));
        mine.charge(ThreadClass::Gc, SimDuration::from_millis(1));
        assert!((mine.overhead_vs_percent(&base) - 1.0).abs() < 1e-9);
        assert!((base.overhead_vs_percent(&mine) + 100.0 / 101.0).abs() < 1e-6);
    }

    #[test]
    fn merge_combines_all_classes() {
        let mut a = CpuAccounting::new();
        a.charge(ThreadClass::Gc, SimDuration::from_millis(1));
        let mut b = CpuAccounting::new();
        b.charge(ThreadClass::Gc, SimDuration::from_millis(2));
        b.charge(ThreadClass::Kernel, SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.time(ThreadClass::Gc), SimDuration::from_millis(3));
        assert_eq!(a.time(ThreadClass::Kernel), SimDuration::from_millis(3));
    }
}
