//! Small statistical helpers shared by the reproduction harness.

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 for degenerate inputs (fewer than two points, or zero
/// variance on either axis), which is the honest answer for "no linear
/// relationship measurable".
///
/// # Examples
///
/// ```
/// use fleet_metrics::correlation;
///
/// let heap_share = [4.0, 9.0, 20.0, 30.0];
/// let speedup = [1.0, 1.2, 1.5, 1.9];
/// assert!(correlation(&heap_share, &speedup) > 0.9);
/// ```
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let xs = &xs[..n as usize];
    let ys = &ys[..n as usize];
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Geometric mean of strictly positive values; 1.0 for an empty slice.
///
/// # Examples
///
/// ```
/// use fleet_metrics::geometric_mean;
///
/// assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((correlation(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_zero() {
        assert_eq!(correlation(&[], &[]), 0.0);
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn correlation_is_symmetric_and_bounded() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let ys = [2.0, 3.0, 9.0, 1.0, 4.0];
        let r = correlation(&xs, &ys);
        assert!((-1.0..=1.0).contains(&r));
        assert!((r - correlation(&ys, &xs)).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }
}
