//! Timestamped series for access-trace figures.
//!
//! Figures 4 and 12b plot "objects accessed" against wall-clock time with
//! phase markers (foreground→background, GC, hot-launch). [`TimeSeries`]
//! stores `(seconds, value)` points plus named markers and can re-bucket
//! itself for compact printing.

use serde::{Deserialize, Serialize};

/// A named time series of `(seconds, value)` samples with phase markers.
///
/// # Examples
///
/// ```
/// use fleet_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new("accessed objects");
/// ts.push(1.0, 120.0);
/// ts.push(2.0, 80.0);
/// ts.mark(1.5, "switch to background");
/// assert_eq!(ts.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
    markers: Vec<(f64, String)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), points: Vec::new(), markers: Vec::new() }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample at time `secs`.
    pub fn push(&mut self, secs: f64, value: f64) {
        self.points.push((secs, value));
    }

    /// Adds a named phase marker (e.g. "GC", "hot-launch") at time `secs`.
    pub fn mark(&mut self, secs: f64, label: impl Into<String>) {
        self.markers.push((secs, label.into()));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw `(seconds, value)` samples in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The phase markers in insertion order.
    pub fn markers(&self) -> &[(f64, String)] {
        &self.markers
    }

    /// Largest sample value, or 0 when empty.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Sums samples into fixed-width time buckets of `width` seconds,
    /// returning `(bucket_start_secs, sum)` pairs for non-empty buckets in
    /// time order.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a positive finite number.
    pub fn bucket_sum(&self, width: f64) -> Vec<(f64, f64)> {
        assert!(width.is_finite() && width > 0.0, "bucket width must be positive");
        let mut buckets: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for &(t, v) in &self.points {
            let idx = (t / width).floor() as u64;
            *buckets.entry(idx).or_insert(0.0) += v;
        }
        buckets.into_iter().map(|(idx, sum)| (idx as f64 * width, sum)).collect()
    }

    /// Total of all sample values in the window `[from_secs, to_secs)`.
    pub fn window_sum(&self, from_secs: f64, to_secs: f64) -> f64 {
        self.points.iter().filter(|&&(t, _)| t >= from_secs && t < to_secs).map(|&(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_inspect() {
        let mut ts = TimeSeries::new("gc");
        assert!(ts.is_empty());
        ts.push(0.5, 10.0);
        ts.push(1.5, 20.0);
        ts.mark(1.0, "bg");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.name(), "gc");
        assert_eq!(ts.markers(), &[(1.0, "bg".to_string())]);
        assert_eq!(ts.max_value(), 20.0);
    }

    #[test]
    fn bucket_sum_groups_points() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.1, 1.0);
        ts.push(0.9, 2.0);
        ts.push(1.1, 4.0);
        ts.push(5.0, 8.0);
        let buckets = ts.bucket_sum(1.0);
        assert_eq!(buckets, vec![(0.0, 3.0), (1.0, 4.0), (5.0, 8.0)]);
    }

    #[test]
    fn window_sum_half_open() {
        let mut ts = TimeSeries::new("x");
        ts.push(1.0, 1.0);
        ts.push(2.0, 2.0);
        ts.push(3.0, 4.0);
        assert_eq!(ts.window_sum(1.0, 3.0), 3.0);
        assert_eq!(ts.window_sum(0.0, 10.0), 7.0);
        assert_eq!(ts.window_sum(4.0, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bucket_sum_rejects_zero_width() {
        TimeSeries::new("x").bucket_sum(0.0);
    }
}
