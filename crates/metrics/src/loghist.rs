//! Log2-bucketed histograms for population-scale aggregation.
//!
//! Cohort runs (DESIGN.md §12) fold tens of thousands of device-days into
//! one percentile dashboard. Exact sample retention would make the merge
//! order observable (float summation) and the memory cost linear in the
//! cohort; [`LogHistogram`] instead keeps 64 power-of-two buckets of `u64`
//! counts, so absorbing and merging are commutative *integer* adds — the
//! property the parallel population runner leans on to stay bit-identical
//! whatever the thread count. Quantiles interpolate inside the matched
//! bucket, mirroring the observability crate's latency histograms.

use serde::{Deserialize, Serialize};

/// A mergeable log2-bucketed histogram over `u64` values.
///
/// # Examples
///
/// ```
/// use fleet_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [120, 130, 140, 900] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 900);
/// assert!(h.quantile(0.5) >= 64 && h.quantile(0.5) <= 255);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bucket `b` holds values in `[2^b, 2^(b+1))` (bucket 0 also holds 0).
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: vec![0; 64], count: 0, sum: 0, max: 0 }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` (bulk absorption from a
    /// pre-counted source).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, interpolated inside the
    /// matched log2 bucket and clamped to the recorded max; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if b == 0 { 0u64 } else { 1u64 << b };
                let hi = if b >= 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
                let frac = (rank - seen) as f64 / n as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return (v as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Folds `other` into `self`. Commutative and associative: any merge
    /// order over any partition of the same observations yields identical
    /// state, which is what makes sharded aggregation order-free.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Per-bucket counts (64 entries; bucket `b` covers `[2^b, 2^(b+1))`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_count_sum_max() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record_n(1000, 3);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3001);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 600.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_uniform_data() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // True median 500; log2 buckets are 2x wide.
        assert!((256..=1000).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.99) <= h.max());
        assert!(h.quantile(0.5) <= h.quantile(0.999));
    }

    #[test]
    fn empty_and_zero_values() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.999), 0);
    }

    #[test]
    fn merge_equals_single_stream_any_partition() {
        let values: Vec<u64> = (0..500).map(|i| (i * i * 2654435761) % 100_000).collect();
        let mut whole = LogHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        // Three shards merged in a scrambled order.
        let mut shards = [LogHistogram::new(), LogHistogram::new(), LogHistogram::new()];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].record(v);
        }
        let mut merged = LogHistogram::new();
        for idx in [2, 0, 1] {
            merged.merge(&shards[idx]);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = LogHistogram::new();
        h.record_n(12345, 7);
        let v = serde::Serialize::to_value(&h);
        let back: LogHistogram = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, h);
    }
}
