//! Commutative integer moment accumulators for outlier scoring.
//!
//! The population telemetry layer (DESIGN.md §15) ranks device-days by
//! z-score against the cohort. Computing a mean/σ online with floats would
//! make the fold order observable; [`Moments`] instead keeps the integer
//! power sums `n`, `Σx`, `Σx²` — commutative saturating adds, like every
//! other field of `PopulationAggregate` — and derives the float statistics
//! only *after* the shards merge, when the state is already order-free.

use serde::{Deserialize, Serialize};

/// Integer power sums `(n, Σx, Σx²)` over `u64` observations.
///
/// Absorbing and merging are commutative saturating integer adds, so a
/// sharded fold lands on identical state whatever the partition; `mean()`
/// / `stddev()` / `z_score()` are derived views computed post-merge.
///
/// # Examples
///
/// ```
/// use fleet_metrics::Moments;
///
/// let mut m = Moments::new();
/// for v in [10, 20, 30] {
///     m.record(v);
/// }
/// assert_eq!(m.n(), 3);
/// assert_eq!(m.mean(), 20.0);
/// assert!(m.z_score(40) > 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Moments {
    /// Number of observations.
    n: u64,
    /// Saturating sum of observations.
    sum: u64,
    /// Saturating sum of squared observations.
    sum_sq: u64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.n += 1;
        self.sum = self.sum.saturating_add(value);
        self.sum_sq = self.sum_sq.saturating_add(value.saturating_mul(value));
    }

    /// Folds `other` into `self`. Commutative and associative.
    pub fn merge(&mut self, other: &Moments) {
        self.n += other.n;
        self.sum = self.sum.saturating_add(other.sum);
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Population standard deviation, or 0 when fewer than two
    /// observations (or when the saturated sums lose the signal).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let mean = self.sum as f64 / n;
        let var = (self.sum_sq as f64 / n) - mean * mean;
        if var > 0.0 {
            var.sqrt()
        } else {
            0.0
        }
    }

    /// The z-score of `value` against the accumulated distribution; 0 when
    /// the deviation is degenerate (so constant cohorts rank nobody as an
    /// outlier).
    pub fn z_score(&self, value: u64) -> f64 {
        let sd = self.stddev();
        if sd <= f64::EPSILON {
            0.0
        } else {
            (value as f64 - self.mean()) / sd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_match_definition() {
        let mut m = Moments::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            m.record(v);
        }
        assert_eq!(m.n(), 8);
        assert_eq!(m.mean(), 5.0);
        assert!((m.stddev() - 2.0).abs() < 1e-9);
        assert!((m.z_score(9) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_stream_any_partition() {
        let values: Vec<u64> = (0..300).map(|i| (i * 2654435761u64) % 10_000).collect();
        let mut whole = Moments::new();
        for &v in &values {
            whole.record(v);
        }
        let mut shards = [Moments::new(), Moments::new(), Moments::new()];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].record(v);
        }
        let mut merged = Moments::new();
        for idx in [1, 2, 0] {
            merged.merge(&shards[idx]);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn degenerate_distributions_score_zero() {
        let mut m = Moments::new();
        assert_eq!(m.z_score(10), 0.0);
        m.record(5);
        assert_eq!(m.z_score(10), 0.0, "one sample has no spread");
        m.record(5);
        m.record(5);
        assert_eq!(m.z_score(500), 0.0, "constant cohort ranks nobody");
    }

    #[test]
    fn serde_round_trip() {
        let mut m = Moments::new();
        m.record(123);
        m.record(456);
        let v = serde::Serialize::to_value(&m);
        let back: Moments = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
