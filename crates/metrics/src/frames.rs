//! Frame-rendering quality: jank ratio and frames per second.
//!
//! §7.3 of the paper counts a *jank* whenever the gap between two rendered
//! frames exceeds 16.7 ms (the 60 Hz deadline) and reports the jank ratio
//! (janks / frames) and FPS (frames / duration) per app and scheme
//! (Figure 14). [`FrameRecorder`] consumes simulated frame timestamps and
//! produces the same two statistics.

use fleet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The 60 Hz frame deadline used for jank detection (16.7 ms).
pub const JANK_DEADLINE: SimDuration = SimDuration::from_micros(16_700);

/// Accumulates frame-completion timestamps for one run.
///
/// # Examples
///
/// ```
/// use fleet_metrics::FrameRecorder;
/// use fleet_sim::SimTime;
///
/// let mut rec = FrameRecorder::new();
/// rec.frame(SimTime::from_millis(16));
/// rec.frame(SimTime::from_millis(32));  // on time
/// rec.frame(SimTime::from_millis(100)); // janky gap
/// let report = rec.report();
/// assert_eq!(report.frames, 3);
/// assert_eq!(report.janks, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameRecorder {
    frames: u64,
    janks: u64,
    last_frame: Option<SimTime>,
    first_frame: Option<SimTime>,
}

/// Jank/FPS statistics for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameReport {
    /// Total rendered frames.
    pub frames: u64,
    /// Frames whose gap from the previous frame exceeded [`JANK_DEADLINE`].
    pub janks: u64,
    /// Jank ratio in percent (janks / frames × 100).
    pub jank_ratio_percent: f64,
    /// Average frames per second over the recording window.
    pub fps: f64,
}

impl FrameRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FrameRecorder::default()
    }

    /// Records a frame completed at time `at`.
    ///
    /// Frames must be recorded in non-decreasing time order; out-of-order
    /// frames are counted but never janky.
    pub fn frame(&mut self, at: SimTime) {
        if self.first_frame.is_none() {
            self.first_frame = Some(at);
        }
        if let Some(prev) = self.last_frame {
            if at.since(prev) > JANK_DEADLINE {
                self.janks += 1;
            }
        }
        self.last_frame = Some(at);
        self.frames += 1;
    }

    /// Number of frames recorded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Produces the jank/FPS report.
    ///
    /// FPS is frames divided by the span between the first and last frame;
    /// a single-frame (or empty) recording reports 0 FPS.
    pub fn report(&self) -> FrameReport {
        let jank_ratio_percent =
            if self.frames == 0 { 0.0 } else { 100.0 * self.janks as f64 / self.frames as f64 };
        let fps = match (self.first_frame, self.last_frame) {
            (Some(first), Some(last)) if last > first => {
                self.frames as f64 / (last - first).as_secs_f64()
            }
            _ => 0.0,
        };
        FrameReport { frames: self.frames, janks: self.janks, jank_ratio_percent, fps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_zero() {
        let r = FrameRecorder::new().report();
        assert_eq!(r.frames, 0);
        assert_eq!(r.janks, 0);
        assert_eq!(r.jank_ratio_percent, 0.0);
        assert_eq!(r.fps, 0.0);
    }

    #[test]
    fn smooth_60hz_has_no_janks() {
        let mut rec = FrameRecorder::new();
        for i in 0..60 {
            rec.frame(SimTime::from_nanos(i * 16_600_000));
        }
        let r = rec.report();
        assert_eq!(r.janks, 0);
        assert!((r.fps - 61.0).abs() < 1.5, "fps {}", r.fps);
    }

    #[test]
    fn long_gaps_count_as_janks() {
        let mut rec = FrameRecorder::new();
        rec.frame(SimTime::from_millis(0));
        rec.frame(SimTime::from_millis(16)); // fine
        rec.frame(SimTime::from_millis(66)); // jank (50 ms gap)
        rec.frame(SimTime::from_millis(82)); // fine
        rec.frame(SimTime::from_millis(200)); // jank
        let r = rec.report();
        assert_eq!(r.frames, 5);
        assert_eq!(r.janks, 2);
        assert!((r.jank_ratio_percent - 40.0).abs() < 1e-9);
    }

    #[test]
    fn exactly_at_deadline_is_not_jank() {
        let mut rec = FrameRecorder::new();
        rec.frame(SimTime::from_nanos(0));
        rec.frame(SimTime::from_nanos(JANK_DEADLINE.as_nanos()));
        assert_eq!(rec.report().janks, 0);
    }
}
