//! Bucketed histograms for lifetime distributions.
//!
//! Figure 5 of the paper bins object lifetimes by the number of GC cycles
//! survived, with a final "still alive after 15 GCs" bucket. [`Histogram`]
//! reproduces that layout: `n` ordinary buckets plus an overflow bucket.

use serde::{Deserialize, Serialize};

/// A histogram over `u32` keys with an explicit overflow bucket.
///
/// # Examples
///
/// ```
/// use fleet_metrics::Histogram;
///
/// let mut h = Histogram::new(15);
/// h.record(0);
/// h.record(3);
/// h.record(99); // lands in the overflow bucket
/// assert_eq!(h.count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with buckets for keys `0..limit`; keys `>= limit`
    /// land in the overflow bucket.
    pub fn new(limit: u32) -> Self {
        Histogram { buckets: vec![0; limit as usize], overflow: 0 }
    }

    /// Records one observation of `key`.
    pub fn record(&mut self, key: u32) {
        match self.buckets.get_mut(key as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Records `n` observations of `key`.
    pub fn record_n(&mut self, key: u32, n: u64) {
        match self.buckets.get_mut(key as usize) {
            Some(b) => *b += n,
            None => self.overflow += n,
        }
    }

    /// Count in bucket `key`; keys past the limit report the overflow count.
    pub fn count(&self, key: u32) -> u64 {
        self.buckets.get(key as usize).copied().unwrap_or(self.overflow)
    }

    /// The overflow ("survived past the last bucket") count.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Number of ordinary buckets.
    pub fn limit(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// Per-bucket percentages (ordinary buckets then overflow), matching the
    /// bar layout of Figure 5a/5b. Empty histograms yield all zeros.
    pub fn percentages(&self) -> Vec<f64> {
        let total = self.total();
        let denom = if total == 0 { 1.0 } else { total as f64 };
        self.buckets
            .iter()
            .chain(std::iter::once(&self.overflow))
            .map(|&c| 100.0 * c as f64 / denom)
            .collect()
    }

    /// Percentage of observations in the overflow bucket (e.g. "% of objects
    /// alive after 15 GC cycles").
    pub fn overflow_percent(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            100.0 * self.overflow as f64 / total as f64
        }
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket limits differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.limit(), other.limit(), "histogram limits must match");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(0);
        h.record(3);
        h.record(4);
        h.record(1000);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut h = Histogram::new(3);
        for k in [0, 0, 1, 2, 5, 5] {
            h.record(k);
        }
        let pcts = h.percentages();
        assert_eq!(pcts.len(), 4);
        assert!((pcts.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((h.overflow_percent() - 100.0 * 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_percentages() {
        let h = Histogram::new(2);
        assert_eq!(h.percentages(), vec![0.0, 0.0, 0.0]);
        assert_eq!(h.overflow_percent(), 0.0);
    }

    #[test]
    fn record_n_bulk() {
        let mut h = Histogram::new(2);
        h.record_n(1, 10);
        h.record_n(9, 5);
        assert_eq!(h.count(1), 10);
        assert_eq!(h.overflow(), 5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2);
        a.record(0);
        let mut b = Histogram::new(2);
        b.record(0);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "limits must match")]
    fn merge_rejects_mismatched_limits() {
        Histogram::new(2).merge(&Histogram::new(3));
    }
}
