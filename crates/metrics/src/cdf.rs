//! Empirical cumulative distribution functions.
//!
//! Figures 13 and 16 of the paper plot hot-launch CDFs per app and scheme;
//! [`Cdf`] renders those curves as `(value, fraction)` pairs suitable for
//! printing or plotting.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use fleet_metrics::Cdf;
///
/// let cdf = Cdf::from_values([100.0, 200.0, 300.0, 400.0]);
/// assert_eq!(cdf.fraction_at_or_below(250.0), 0.5);
/// assert_eq!(cdf.value_at_fraction(1.0), 400.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from any iterator of values. NaN values are dropped.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in `[0, 1]`. Returns 0 for an empty CDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Smallest sample value `v` with `fraction_at_or_below(v) >= q`.
    ///
    /// Returns 0 for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn value_at_fraction(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "fraction {q} out of range");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Renders the CDF as `points` evenly spaced `(value, fraction)` pairs.
    ///
    /// The first point is the sample minimum, the last the maximum.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// The sorted samples.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let c = Cdf::from_values(std::iter::empty());
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_or_below(10.0), 0.0);
        assert_eq!(c.value_at_fraction(0.9), 0.0);
        assert!(c.curve(10).is_empty());
    }

    #[test]
    fn fractions_step_at_samples() {
        let c = Cdf::from_values([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(1.0), 0.25);
        assert_eq!(c.fraction_at_or_below(2.9), 0.5);
        assert_eq!(c.fraction_at_or_below(4.0), 1.0);
        assert_eq!(c.fraction_at_or_below(9.0), 1.0);
    }

    #[test]
    fn quantile_inverts_fraction() {
        let c = Cdf::from_values([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.value_at_fraction(0.2), 10.0);
        assert_eq!(c.value_at_fraction(0.5), 30.0);
        assert_eq!(c.value_at_fraction(0.9), 50.0);
        assert_eq!(c.value_at_fraction(0.0), 10.0);
    }

    #[test]
    fn curve_spans_sample_range() {
        let c = Cdf::from_values([0.0, 100.0]);
        let curve = c.curve(5);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0], (0.0, 0.5));
        assert_eq!(curve[4], (100.0, 1.0));
    }

    #[test]
    fn degenerate_curve_collapses() {
        let c = Cdf::from_values([7.0, 7.0, 7.0]);
        assert_eq!(c.curve(10), vec![(7.0, 1.0)]);
    }
}
