//! A first-order power model.
//!
//! The paper measures whole-device power with a Monsoon monitor (§7.3):
//! Fleet draws 1851 ± 143 mW versus Android's 1817 ± 197 mW — statistically
//! indistinguishable. We cannot measure a battery rail in a simulator, so
//! [`PowerModel`] converts the simulation's *activity* (CPU time, swap I/O,
//! resident DRAM) into milliwatts using first-order coefficients for a
//! Snapdragon-845-class SoC. What matters for reproduction is the *delta
//! between schemes*, which is driven by the same activity counters the real
//! measurement responds to.

use crate::cpu::CpuAccounting;
use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Coefficients converting simulated activity to average power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Baseline device draw (screen, radios, rails) in mW.
    pub idle_mw: f64,
    /// Extra draw while a CPU core is busy, in mW.
    pub cpu_active_mw: f64,
    /// Energy per byte moved to/from the flash swap device, in nanojoules.
    pub swap_nj_per_byte: f64,
    /// Draw per GiB of resident DRAM (refresh), in mW.
    pub dram_mw_per_gib: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // First-order constants for a Pixel-3-class device: ~1.7 W screen-on
        // baseline, ~900 mW for a busy big core, ~60 nJ/byte UFS transfer,
        // ~12 mW/GiB LPDDR4X refresh.
        PowerModel {
            idle_mw: 1700.0,
            cpu_active_mw: 900.0,
            swap_nj_per_byte: 60.0,
            dram_mw_per_gib: 12.0,
        }
    }
}

/// Average power over a window, with the activity breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Average draw over the window, in mW.
    pub average_mw: f64,
    /// Portion attributable to CPU activity, in mW.
    pub cpu_mw: f64,
    /// Portion attributable to swap traffic, in mW.
    pub swap_mw: f64,
    /// Portion attributable to resident DRAM, in mW.
    pub dram_mw: f64,
}

impl PowerModel {
    /// Computes average power over a window of length `window`.
    ///
    /// `cpu` is the CPU time consumed inside the window, `swap_bytes` the
    /// total bytes moved to or from the swap device, and `resident_bytes`
    /// the average resident DRAM.
    ///
    /// Returns a report with `average_mw = 0` for a zero-length window.
    pub fn report(
        &self,
        window: SimDuration,
        cpu: &CpuAccounting,
        swap_bytes: u64,
        resident_bytes: u64,
    ) -> PowerReport {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return PowerReport { average_mw: 0.0, cpu_mw: 0.0, swap_mw: 0.0, dram_mw: 0.0 };
        }
        let cpu_util = (cpu.total().as_secs_f64() / secs).min(8.0); // octa-core cap
        let cpu_mw = self.cpu_active_mw * cpu_util;
        // nJ → mW: nJ / (s × 1e6)  (1 mW = 1e6 nJ/s).
        let swap_mw = self.swap_nj_per_byte * swap_bytes as f64 / (secs * 1e6);
        let dram_mw = self.dram_mw_per_gib * resident_bytes as f64 / (1u64 << 30) as f64;
        PowerReport {
            average_mw: self.idle_mw + cpu_mw + swap_mw + dram_mw,
            cpu_mw,
            swap_mw,
            dram_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::ThreadClass;

    #[test]
    fn idle_device_draws_baseline_plus_dram() {
        let model = PowerModel::default();
        let r = model.report(SimDuration::from_secs(60), &CpuAccounting::new(), 0, 1 << 30);
        assert!((r.average_mw - (1700.0 + 12.0)).abs() < 1e-9);
        assert_eq!(r.cpu_mw, 0.0);
        assert_eq!(r.swap_mw, 0.0);
    }

    #[test]
    fn busy_cpu_increases_draw() {
        let model = PowerModel::default();
        let mut cpu = CpuAccounting::new();
        cpu.charge(ThreadClass::Mutator, SimDuration::from_secs(30));
        let r = model.report(SimDuration::from_secs(60), &cpu, 0, 0);
        // Half a core busy → 450 mW above idle.
        assert!((r.cpu_mw - 450.0).abs() < 1e-9);
        assert!(r.average_mw > model.idle_mw);
    }

    #[test]
    fn cpu_utilisation_is_capped_at_core_count() {
        let model = PowerModel::default();
        let mut cpu = CpuAccounting::new();
        cpu.charge(ThreadClass::Mutator, SimDuration::from_secs(1000));
        let r = model.report(SimDuration::from_secs(1), &cpu, 0, 0);
        assert!((r.cpu_mw - 8.0 * 900.0).abs() < 1e-9);
    }

    #[test]
    fn swap_traffic_costs_energy() {
        let model = PowerModel::default();
        // 100 MB over 60 s at 60 nJ/B → 100e6 × 60 / (60 × 1e6) = 100 mW.
        let r = model.report(SimDuration::from_secs(60), &CpuAccounting::new(), 100_000_000, 0);
        assert!((r.swap_mw - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_reports_zero() {
        let model = PowerModel::default();
        let r = model.report(SimDuration::ZERO, &CpuAccounting::new(), 1000, 1000);
        assert_eq!(r.average_mw, 0.0);
    }
}
