//! Aligned text tables for experiment output.
//!
//! The reproduction harness prints every figure and table of the paper as an
//! aligned text table with a "paper" column next to the "measured" column.
//! [`Table`] is a tiny column-aligning renderer; no external crates needed.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use fleet_metrics::Table;
///
/// let mut t = Table::new(["app", "hot (ms)", "cold (ms)"]);
/// t.row(["Twitter", "273", "2390"]);
/// t.row(["Facebook", "209", "1800"]);
/// let text = t.to_string();
/// assert!(text.contains("Twitter"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}", w = *w)?;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a millisecond value compactly ("273 ms" / "2.39 s").
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else {
        format!("{ms:.0} ms")
    }
}

/// Formats a ratio as a speedup ("1.59x").
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["wide-cell", "1"]);
        t.row(["x", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both data rows should start their second column at the same offset.
        let col = |line: &str| line.find('1').or_else(|| line.find('2')).unwrap();
        assert_eq!(col(lines[2]), col(lines[3]));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        // Should not panic when rendering.
        let _ = t.to_string();
    }

    #[test]
    fn long_rows_are_truncated() {
        let mut t = Table::new(["a"]);
        t.row(["x", "y", "z"]);
        let s = t.to_string();
        assert!(!s.contains('y'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(273.0), "273 ms");
        assert_eq!(fmt_ms(2390.0), "2.39 s");
        assert_eq!(fmt_speedup(1.59), "1.59x");
    }
}
