//! Measurement and reporting layer for the Fleet reproduction.
//!
//! The paper reports its results as launch-time distributions (Figures 2, 3,
//! 13, 15, 16), time series of accessed objects (Figures 4 and 12), lifetime
//! histograms (Figure 5), frame-rendering quality (Figure 14, jank ratio and
//! FPS), CPU-time shares and a power draw (§7.3). This crate computes all of
//! those statistics from simulated traces and renders them as aligned text
//! tables — the analogue of the artifact's Jupyter notebooks.
//!
//! # Examples
//!
//! ```
//! use fleet_metrics::Summary;
//!
//! let launches = [101.0, 98.0, 120.0, 620.0, 104.0];
//! let s = Summary::from_values(launches);
//! assert_eq!(s.percentile(50.0), 104.0);
//! assert!(s.mean() > 100.0);
//! ```

#![warn(missing_docs)]

pub mod cdf;
pub mod cpu;
pub mod frames;
pub mod histogram;
pub mod loghist;
pub mod moments;
pub mod power;
pub mod series;
pub mod stats;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use cpu::{CpuAccounting, ThreadClass};
pub use frames::{FrameRecorder, FrameReport};
pub use histogram::Histogram;
pub use loghist::LogHistogram;
pub use moments::Moments;
pub use power::{PowerModel, PowerReport};
pub use series::TimeSeries;
pub use stats::{correlation, geometric_mean};
pub use summary::Summary;
pub use table::Table;
