//! Summary statistics over a sample: mean, standard deviation, percentiles.
//!
//! The paper characterises hot-launch behaviour by the 10th, 50th and 90th
//! percentiles plus mean ± standard deviation (Figure 15); [`Summary`] is the
//! one-stop type the experiment drivers hand their launch samples to.

use serde::{Deserialize, Serialize};

/// An immutable summary of a numeric sample.
///
/// Values are sorted at construction so percentile queries are O(1)-ish
/// (a single interpolation on the sorted slice).
///
/// # Examples
///
/// ```
/// use fleet_metrics::Summary;
///
/// let s = Summary::from_values([3.0, 1.0, 2.0]);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// assert_eq!(s.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std_dev: f64,
}

impl Summary {
    /// Builds a summary from any iterator of values. NaN values are dropped.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        let n = sorted.len() as f64;
        let (mean, std_dev) = if sorted.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = sorted.iter().sum::<f64>() / n;
            let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            (mean, var.sqrt())
        };
        Summary { sorted, mean, std_dev }
    }

    /// Number of (non-NaN) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean, or 0 for an empty sample.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation, or 0 for an empty sample.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// Returns 0 for an empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        match self.sorted.len() {
            0 => 0.0,
            1 => self.sorted[0],
            n => {
                let pos = p / 100.0 * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
            }
        }
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The 90th-percentile "tail" value the paper focuses on.
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// The 10th-percentile "best case" value (Figure 15b).
    pub fn p10(&self) -> f64 {
        self.percentile(10.0)
    }

    /// The 99th-percentile deep-tail value (the reclaim-policy tradeoff
    /// curves report it next to kill rate).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// The sorted samples.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::from_values(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(90.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::from_values([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.p90(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_values([0.0, 10.0]);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.percentile(25.0), 2.5);
    }

    #[test]
    fn mean_and_std_dev() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nan_values_are_dropped() {
        let s = Summary::from_values([1.0, f64::NAN, 3.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn collects_from_iterator() {
        let s: Summary = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.len(), 100);
        assert!((s.median() - 50.5).abs() < 1e-9);
        assert!((s.p90() - 90.1).abs() < 1e-9);
        assert!((s.p10() - 10.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        Summary::from_values([1.0]).percentile(101.0);
    }
}
