//! Property tests on the statistics layer.

use fleet_metrics::{Cdf, Histogram, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentiles_are_monotone_and_bounded(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::from_values(values.clone());
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= prev, "percentile must be monotone in p");
            prop_assert!(v >= s.min() && v <= s.max());
            prev = v;
        }
        prop_assert!(s.mean() >= s.min() && s.mean() <= s.max());
        prop_assert!(s.std_dev() >= 0.0);
    }

    #[test]
    fn summary_is_order_invariant(mut values in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let a = Summary::from_values(values.clone());
        values.reverse();
        let b = Summary::from_values(values);
        prop_assert_eq!(a.median(), b.median());
        prop_assert_eq!(a.mean(), b.mean());
        prop_assert_eq!(a.p90(), b.p90());
    }

    #[test]
    fn cdf_fraction_is_monotone_and_inverts(values in proptest::collection::vec(0f64..1e6, 1..200)) {
        let cdf = Cdf::from_values(values.clone());
        let mut prev = 0.0;
        let max = values.iter().cloned().fold(0.0, f64::max);
        for i in 0..=20 {
            let x = max * i as f64 / 20.0;
            let f = cdf.fraction_at_or_below(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert_eq!(cdf.fraction_at_or_below(max), 1.0);
        // value_at_fraction is a left inverse up to sample granularity.
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = cdf.value_at_fraction(q);
            prop_assert!(cdf.fraction_at_or_below(v) >= q - 1e-9);
        }
    }

    #[test]
    fn histogram_totals_and_percentages(keys in proptest::collection::vec(0u32..40, 1..300), limit in 1u32..20) {
        let mut h = Histogram::new(limit);
        for &k in &keys {
            h.record(k);
        }
        prop_assert_eq!(h.total(), keys.len() as u64);
        let pcts = h.percentages();
        prop_assert_eq!(pcts.len() as u32, limit + 1);
        let sum: f64 = pcts.iter().sum();
        prop_assert!((sum - 100.0).abs() < 1e-6);
        let overflow_expect = keys.iter().filter(|&&k| k >= limit).count() as u64;
        prop_assert_eq!(h.overflow(), overflow_expect);
    }
}
