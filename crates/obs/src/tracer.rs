//! Span placement on virtual-time tracks and Chrome trace-event export.
//!
//! Components record spans relatively ([`SpanRec`]: depth + offset from the
//! enclosing root span). The tracer places each batch on an absolute
//! virtual-time track with two structural guarantees, enforced by
//! construction rather than by trusting instrumentation sites:
//!
//! 1. **Nesting** — a child span's interval is contained in its parent's.
//! 2. **Sibling order** — spans at one depth under one parent (and root
//!    spans on one track) never overlap; each starts no earlier than its
//!    previous sibling ended.
//!
//! The exporter emits Chrome trace-event JSON (`ph:"X"` complete events,
//! microsecond timestamps) that loads in Perfetto and `chrome://tracing`;
//! [`validate_chrome_trace`] re-parses an exported document and re-checks
//! both guarantees, which is what the CI `obs-smoke` job runs.

use std::collections::BTreeMap;

use crate::log::{SpanArgs, SpanRec};

/// A span with its absolute virtual-time interval assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedSpan {
    /// Track (exported as Chrome `tid`).
    pub track: u64,
    /// Span name.
    pub name: &'static str,
    /// Category.
    pub cat: &'static str,
    /// Nesting depth (0 = root on its track).
    pub depth: u8,
    /// Absolute start, simulated nanos.
    pub start: u64,
    /// Duration, simulated nanos (children are clamped into parents).
    pub dur: u64,
    /// Key:value attributes.
    pub args: SpanArgs,
}

impl PlacedSpan {
    /// Absolute end, simulated nanos.
    pub fn end(&self) -> u64 {
        self.start + self.dur
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    start: u64,
    end: u64,
    /// Earliest start the next child of this frame may take.
    next_child: u64,
}

/// Collects placed spans across all tracks of one run.
#[derive(Debug, Default)]
pub struct Tracer {
    spans: Vec<PlacedSpan>,
    track_names: BTreeMap<u64, String>,
    /// Per-track earliest start for the next root span.
    cursors: BTreeMap<u64, u64>,
}

impl Tracer {
    /// A new, empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Names a track (exported as a Chrome `thread_name` metadata event).
    pub fn set_track_name(&mut self, track: u64, name: String) {
        self.track_names.insert(track, name);
    }

    /// Places one batch of spans recorded by a single component onto
    /// `track`, anchored at `anchor` nanos (the virtual time at which the
    /// batch's first root span begins). Spans must arrive in recording
    /// order: each root span followed by its descendants, depth-first.
    pub fn place_batch(
        &mut self,
        track: u64,
        anchor: u64,
        batch: impl IntoIterator<Item = SpanRec>,
    ) {
        let mut stack: Vec<Frame> = Vec::new();
        for rec in batch {
            let depth = usize::from(rec.depth);
            stack.truncate(depth.min(stack.len()));
            let (start, dur) = if let Some(parent) = stack.last().copied() {
                // Child: clamp into the parent and behind prior siblings.
                let want = parent.start.saturating_add(rec.rel_start);
                let start = want.max(parent.next_child).min(parent.end);
                let dur = rec.dur.min(parent.end - start);
                stack.last_mut().expect("parent frame").next_child = start + dur;
                (start, dur)
            } else {
                // Root: behind the previous root on this track.
                let cursor = self.cursors.entry(track).or_insert(0);
                let start = anchor.max(*cursor);
                *cursor = start + rec.dur;
                (start, rec.dur)
            };
            stack.push(Frame { start, end: start + dur, next_child: start });
            self.spans.push(PlacedSpan {
                track,
                name: rec.name,
                cat: rec.cat,
                depth: stack.len() as u8 - 1,
                start,
                dur,
                args: rec.args,
            });
        }
    }

    /// All placed spans, in placement order.
    pub fn spans(&self) -> &[PlacedSpan] {
        &self.spans
    }

    /// Serializes the trace as a Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        use serde::{Number, Value};
        let mut events: Vec<Value> = Vec::with_capacity(self.spans.len() + self.track_names.len());
        for (&track, name) in &self.track_names {
            events.push(Value::Object(vec![
                ("name".into(), Value::String("thread_name".into())),
                ("ph".into(), Value::String("M".into())),
                ("pid".into(), Value::Number(Number::PosInt(1))),
                ("tid".into(), Value::Number(Number::PosInt(track))),
                ("args".into(), Value::Object(vec![("name".into(), Value::String(name.clone()))])),
            ]));
        }
        for span in &self.spans {
            let args: Vec<(String, Value)> = span
                .args
                .iter()
                .map(|&(k, v)| (k.to_string(), Value::Number(Number::PosInt(v))))
                .collect();
            events.push(Value::Object(vec![
                ("name".into(), Value::String(span.name.into())),
                ("cat".into(), Value::String(span.cat.into())),
                ("ph".into(), Value::String("X".into())),
                ("ts".into(), Value::Number(Number::Float(span.start as f64 / 1000.0))),
                ("dur".into(), Value::Number(Number::Float(span.dur as f64 / 1000.0))),
                ("pid".into(), Value::Number(Number::PosInt(1))),
                ("tid".into(), Value::Number(Number::PosInt(span.track))),
                ("args".into(), Value::Object(args)),
            ]));
        }
        let doc = Value::Object(vec![
            ("displayTimeUnit".into(), Value::String("ms".into())),
            ("traceEvents".into(), Value::Array(events)),
        ]);
        serde_json::to_string(&doc).expect("trace serializes")
    }
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of `ph:"X"` complete events.
    pub spans: usize,
    /// Number of distinct `tid` tracks carrying spans.
    pub tracks: usize,
}

fn field<'v>(obj: &'v [(String, serde::Value)], key: &str) -> Option<&'v serde::Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn num(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::Number(n) => Some(n.as_f64()),
        _ => None,
    }
}

/// Validates an exported Chrome trace-event JSON document: well-formed
/// JSON, a `traceEvents` array whose events carry the required fields, and
/// the structural span guarantees (children inside parents, no sibling
/// overlap) re-checked per track with a small epsilon for the
/// nanos→micros float conversion.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    use serde::Value;
    const EPS: f64 = 2e-3; // μs; covers ns→μs float rounding
    let doc = serde::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Object(root) = &doc else {
        return Err("root is not an object".into());
    };
    let Some(Value::Array(events)) = field(root, "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    // Per track: stack of (start, end) open intervals + last sibling end per
    // depth, replayed in event order (placement order is time order per
    // track and depth-first, so a simple stack replay suffices).
    let mut stacks: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Value::Object(ev) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let ph = match field(ev, "ph") {
            Some(Value::String(s)) => s.as_str(),
            _ => return Err(format!("event {i} missing ph")),
        };
        if field(ev, "name").is_none() {
            return Err(format!("event {i} missing name"));
        }
        let tid = field(ev, "tid").and_then(num).ok_or_else(|| format!("event {i} missing tid"))?;
        if field(ev, "pid").and_then(num).is_none() {
            return Err(format!("event {i} missing pid"));
        }
        if ph == "M" {
            continue;
        }
        if ph != "X" {
            return Err(format!("event {i} has unsupported ph {ph:?}"));
        }
        let ts = field(ev, "ts").and_then(num).ok_or_else(|| format!("event {i} missing ts"))?;
        let dur = field(ev, "dur").and_then(num).ok_or_else(|| format!("event {i} missing dur"))?;
        if dur < 0.0 || ts < 0.0 {
            return Err(format!("event {i} has negative ts/dur"));
        }
        let end = ts + dur;
        let stack = stacks.entry(tid as u64).or_default();
        // Pop completed ancestors: anything this span does not fall inside.
        while let Some(&(ps, pe)) = stack.last() {
            if ts + EPS >= ps && end <= pe + EPS {
                break; // nested in the top-of-stack span
            }
            if ts + EPS >= pe {
                stack.pop(); // strictly after: a sibling/uncle boundary
            } else {
                return Err(format!(
                    "event {i} [{ts:.3},{end:.3}] overlaps open span [{ps:.3},{pe:.3}] on tid {tid}"
                ));
            }
        }
        stack.push((ts, end));
        spans += 1;
    }
    Ok(TraceSummary { spans, tracks: stacks.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(depth: u8, rel_start: u64, dur: u64) -> SpanRec {
        SpanRec { pid: 0, name: "s", cat: "t", depth, rel_start, dur, args: Vec::new() }
    }

    #[test]
    fn roots_never_overlap_on_a_track() {
        let mut tr = Tracer::new();
        tr.place_batch(1, 100, [rec(0, 0, 50)]);
        tr.place_batch(1, 120, [rec(0, 0, 30)]); // anchor inside prior span
        let s = tr.spans();
        assert_eq!((s[0].start, s[0].end()), (100, 150));
        assert_eq!((s[1].start, s[1].end()), (150, 180)); // pushed behind
    }

    #[test]
    fn children_clamp_into_parent() {
        let mut tr = Tracer::new();
        tr.place_batch(
            1,
            0,
            [
                rec(0, 0, 100),
                rec(1, 10, 40),
                rec(1, 20, 1000), // overlaps sibling + overflows parent
            ],
        );
        let s = tr.spans();
        assert_eq!((s[1].start, s[1].end()), (10, 50));
        assert_eq!(s[2].start, 50); // pushed behind sibling
        assert_eq!(s[2].end(), 100); // clamped to parent end
    }

    #[test]
    fn grandchildren_nest_in_children() {
        let mut tr = Tracer::new();
        tr.place_batch(1, 0, [rec(0, 0, 100), rec(1, 10, 50), rec(2, 15, 20), rec(1, 70, 20)]);
        let s = tr.spans();
        assert!(s[2].start >= s[1].start && s[2].end() <= s[1].end());
        assert!(s[3].start >= s[1].end());
    }

    #[test]
    fn orphan_depth_is_reparented() {
        // A depth-2 span with no open depth-1 parent attaches to the root.
        let mut tr = Tracer::new();
        tr.place_batch(1, 0, [rec(0, 0, 100), rec(2, 5, 10)]);
        let s = tr.spans();
        assert_eq!(s[1].depth, 1);
        assert!(s[1].start >= s[0].start && s[1].end() <= s[0].end());
    }

    #[test]
    fn export_validates() {
        let mut tr = Tracer::new();
        tr.set_track_name(1, "kernel".into());
        tr.place_batch(1, 0, [rec(0, 0, 100), rec(1, 10, 40)]);
        tr.place_batch(2, 50, [rec(0, 0, 10)]);
        let json = tr.to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary, TraceSummary { spans: 3, tracks: 2 });
    }

    #[test]
    fn validator_rejects_overlap_and_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let overlapping = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":50,"dur":100,"pid":1,"tid":1}]}"#;
        let err = validate_chrome_trace(overlapping).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
        let missing = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing).is_err());
    }
}
