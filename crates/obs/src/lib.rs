//! `fleet-obs` — virtual-time observability for the Fleet reproduction.
//!
//! A zero-cost-when-disabled profiling layer mirroring the `fleet-audit`
//! flight recorder's architecture: instrumented components (the kernel
//! memory manager, per-process heaps, the device) own [`ObsLog`]s that are
//! disabled by default; when a device finds an installed [`ObsPipeline`]
//! (via `fleet::obs::install`) it enables them and drains them at the same
//! deterministic barriers the audit layer uses. The pipeline turns the
//! records into:
//!
//! - hierarchical **spans** on virtual-time tracks ([`Tracer`]), exported
//!   as Chrome trace-event JSON that loads in Perfetto;
//! - a **metric registry** ([`MetricRegistry`]) of counters, gauges,
//!   log-bucketed latency histograms and sampled time series, exported as
//!   a schema-stable `metrics.json`.
//!
//! Everything is stamped in *simulated* nanoseconds — the profiler sees
//! the modelled device's time, not the host's.

mod log;
mod metrics;
pub mod slo;
mod tracer;

pub use log::{ObsLog, ObsRecord, SpanArgs, SpanRec};
pub use metrics::{LatencyHistogram, MetricRegistry, METRICS_SCHEMA_VERSION};
pub use slo::{SloBreach, SloMetric, SloReport, SloSpec, SloVerdict, SloWindowPoint};
pub use tracer::{validate_chrome_trace, PlacedSpan, TraceSummary, Tracer};

/// The run-wide sink: a tracer plus a metric registry, shared by every
/// device attached to it. Mirrors `fleet_audit::AuditPipeline`.
#[derive(Debug, Default)]
pub struct ObsPipeline {
    tracer: Tracer,
    metrics: MetricRegistry,
    devices: u32,
}

impl ObsPipeline {
    /// A new, empty pipeline.
    pub fn new() -> Self {
        ObsPipeline::default()
    }

    /// Registers a device, returning its ordinal (0, 1, ...). Tracks from
    /// different devices are namespaced by ordinal so multi-device runs
    /// export into one trace without colliding.
    pub fn attach(&mut self) -> u32 {
        let ordinal = self.devices;
        self.devices += 1;
        ordinal
    }

    /// The track id for `pid` on device `ordinal`.
    pub fn track(ordinal: u32, pid: u32) -> u64 {
        u64::from(ordinal) * 1_000_000 + u64::from(pid)
    }

    /// Names the track for `pid` on device `ordinal`.
    pub fn set_track_name(&mut self, ordinal: u32, pid: u32, name: String) {
        self.tracer.set_track_name(Self::track(ordinal, pid), name);
    }

    /// Feeds one drained component batch: spans are placed on the track of
    /// their stamped pid anchored at `anchor_nanos`; counter / gauge /
    /// latency records go to the metric registry.
    pub fn feed_batch(
        &mut self,
        ordinal: u32,
        anchor_nanos: u64,
        records: impl IntoIterator<Item = ObsRecord>,
    ) {
        // Group consecutive spans per pid so each component's batch places
        // as one unit on its track.
        let mut pending: Vec<SpanRec> = Vec::new();
        let mut pending_pid: Option<u32> = None;
        let flush = |tracer: &mut Tracer, pid: Option<u32>, batch: &mut Vec<SpanRec>| {
            if let Some(pid) = pid {
                if !batch.is_empty() {
                    tracer.place_batch(Self::track(ordinal, pid), anchor_nanos, batch.drain(..));
                }
            }
        };
        for rec in records {
            match rec {
                ObsRecord::Span(span) => {
                    if pending_pid != Some(span.pid) {
                        flush(&mut self.tracer, pending_pid, &mut pending);
                        pending_pid = Some(span.pid);
                    }
                    pending.push(span);
                }
                ObsRecord::Counter { name, delta } => self.metrics.counter_add(name, delta),
                ObsRecord::Gauge { name, value } => self.metrics.gauge_set(name, value),
                ObsRecord::Latency { name, nanos } => self.metrics.latency(name, nanos),
            }
        }
        flush(&mut self.tracer, pending_pid, &mut pending);
    }

    /// Appends a point to a named time series (device-level sampling).
    pub fn sample(&mut self, name: &'static str, at_nanos: u64, value: u64) {
        self.metrics.sample(name, at_nanos, value);
    }

    /// Adds to a named counter directly (device-level counters).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    /// Sets a named gauge directly.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.metrics.gauge_set(name, value);
    }

    /// Records a latency observation directly.
    pub fn latency(&mut self, name: &'static str, nanos: u64) {
        self.metrics.latency(name, nanos);
    }

    /// Records `n` identical latency observations (bulk absorption from a
    /// pre-aggregated histogram, e.g. a population cohort).
    pub fn latency_n(&mut self, name: &'static str, nanos: u64, n: u64) {
        self.metrics.latency_n(name, nanos, n);
    }

    /// The placed spans (for tests and attribution).
    pub fn spans(&self) -> &[PlacedSpan] {
        self.tracer.spans()
    }

    /// The metric registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Exports the Chrome trace-event JSON document.
    pub fn trace_json(&self) -> String {
        self.tracer.to_chrome_json()
    }

    /// Exports the `metrics.json` document.
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pid: u32, depth: u8, rel: u64, dur: u64) -> ObsRecord {
        ObsRecord::Span(SpanRec {
            pid,
            name: "s",
            cat: "t",
            depth,
            rel_start: rel,
            dur,
            args: vec![("k", 1)],
        })
    }

    #[test]
    fn pipeline_routes_spans_and_metrics() {
        let mut p = ObsPipeline::new();
        let ord = p.attach();
        assert_eq!(ord, 0);
        p.set_track_name(ord, 0, "kernel".into());
        p.feed_batch(
            ord,
            1000,
            vec![
                span(0, 0, 0, 100),
                span(0, 1, 10, 20),
                span(3, 0, 0, 50),
                ObsRecord::Counter { name: "c", delta: 2 },
                ObsRecord::Latency { name: "l_ns", nanos: 5 },
            ],
        );
        assert_eq!(p.spans().len(), 3);
        assert_eq!(p.spans()[0].track, ObsPipeline::track(0, 0));
        assert_eq!(p.spans()[2].track, ObsPipeline::track(0, 3));
        assert_eq!(p.metrics().counter("c"), 2);
        let json = p.trace_json();
        validate_chrome_trace(&json).expect("valid trace");
    }

    #[test]
    fn ordinals_namespace_tracks() {
        let mut p = ObsPipeline::new();
        let a = p.attach();
        let b = p.attach();
        assert_ne!(ObsPipeline::track(a, 5), ObsPipeline::track(b, 5));
    }
}
