//! Declarative SLO monitors over run-slice windows.
//!
//! A fleet operator declares objectives — "hot-launch p99 ≤ 250 ms",
//! "≤ 2 LMK kills per device-day" — as [`SloSpec`]s; the population runner
//! evaluates them against per-slice telemetry *after* the shards merge, so
//! the verdicts are a pure function of the already-order-free aggregate
//! and parallel/sequential cohort runs agree byte for byte.
//!
//! Everything here is integer-valued and schema-stable: metric values are
//! carried in milli-units (`value_milli`) so latency percentiles
//! (microseconds = milli-milliseconds) and kill rates (kills × 1000 per
//! device) share one representation without floats in the fold.

use serde::{Deserialize, Serialize};

/// The metric an [`SloSpec`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloMetric {
    /// Hot-launch latency; the percentile is taken per burn-rate window
    /// and compared in milliseconds (`value_milli` = microseconds).
    HotLaunch,
    /// LMK kills per device-day; `value_milli` = kills × 1000 / devices
    /// in the window (the percentile field is ignored).
    LmkKills,
}

impl SloMetric {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            SloMetric::HotLaunch => "hot_launch",
            SloMetric::LmkKills => "lmk_kills",
        }
    }
}

/// One declarative service-level objective, evaluated over burn-rate
/// windows of whole run-slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Operator-facing name, carried verbatim into breach records.
    pub name: String,
    /// The targeted metric.
    pub metric: SloMetric,
    /// Percentile in basis points (9900 = p99). Ignored by rate metrics.
    pub percentile_bp: u32,
    /// Breach threshold in the metric's milli-unit (ms-latency → µs;
    /// kills/device-day → kills × 1000).
    pub threshold_milli: u64,
    /// Burn-rate window length in run-slices (≥ 1): the objective is
    /// evaluated over each disjoint window of this many slices.
    pub window_slices: u32,
    /// When true, any breach turns into a run-failing verdict
    /// (`SloReport::enforce_failures`); when false the breach is reported
    /// but the run exits cleanly — the CI-dashboard mode.
    pub enforce: bool,
}

impl SloSpec {
    /// A convenience constructor for a non-enforcing hot-launch latency
    /// objective: `percentile_bp` over windows of `window_slices` slices
    /// must stay ≤ `threshold_ms`.
    pub fn hot_launch_ms(
        name: &str,
        percentile_bp: u32,
        threshold_ms: u64,
        window_slices: u32,
    ) -> Self {
        SloSpec {
            name: name.to_string(),
            metric: SloMetric::HotLaunch,
            percentile_bp,
            threshold_milli: threshold_ms * 1000,
            window_slices,
            enforce: false,
        }
    }

    /// A convenience constructor for a non-enforcing kill-rate objective:
    /// kills per device-day must stay ≤ `threshold_milli`/1000.
    pub fn lmk_kills_milli(name: &str, threshold_milli: u64, window_slices: u32) -> Self {
        SloSpec {
            name: name.to_string(),
            metric: SloMetric::LmkKills,
            percentile_bp: 0,
            threshold_milli,
            window_slices,
            enforce: false,
        }
    }

    /// Marks the objective as run-failing on breach.
    pub fn enforced(mut self) -> Self {
        self.enforce = true;
        self
    }

    /// Structural validation (shared by `PopulationSpec::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("slo: name must be non-empty".into());
        }
        if self.window_slices == 0 {
            return Err(format!("slo {}: window_slices must be >= 1", self.name));
        }
        if self.percentile_bp > 10_000 {
            return Err(format!(
                "slo {}: percentile_bp {} out of range (0..=10000)",
                self.name, self.percentile_bp
            ));
        }
        Ok(())
    }
}

/// One evaluated burn-rate window: the metric's observed milli-value over
/// `[window_start, window_end)` slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloWindowPoint {
    /// First slice index of the window (inclusive).
    pub window_start: u32,
    /// One past the last slice index of the window.
    pub window_end: u32,
    /// Observed metric value in milli-units.
    pub value_milli: u64,
}

/// A schema-stable record of one breached burn-rate window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloBreach {
    /// First slice index of the breached window.
    pub window_start: u32,
    /// One past the last slice index of the breached window.
    pub window_end: u32,
    /// Observed metric value in milli-units.
    pub value_milli: u64,
    /// The spec's threshold, copied for self-contained export rows.
    pub threshold_milli: u64,
}

/// The verdict for one [`SloSpec`] over a whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// The evaluated spec (copied, so exports are self-describing).
    pub spec: SloSpec,
    /// Number of windows evaluated.
    pub windows: u32,
    /// True iff no window breached.
    pub pass: bool,
    /// Every breached window, in slice order.
    pub breaches: Vec<SloBreach>,
}

impl SloVerdict {
    /// Evaluates `spec` against per-window metric observations. The
    /// points must arrive in slice order (the aggregate's slice rows are
    /// index-keyed, so this is free); windows with no data are skipped,
    /// never counted as breaches.
    pub fn evaluate(spec: &SloSpec, points: impl IntoIterator<Item = SloWindowPoint>) -> Self {
        let mut windows = 0;
        let mut breaches = Vec::new();
        for point in points {
            windows += 1;
            if point.value_milli > spec.threshold_milli {
                breaches.push(SloBreach {
                    window_start: point.window_start,
                    window_end: point.window_end,
                    value_milli: point.value_milli,
                    threshold_milli: spec.threshold_milli,
                });
            }
        }
        SloVerdict { spec: spec.clone(), windows, pass: breaches.is_empty(), breaches }
    }
}

/// The aggregate view over every verdict of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// One verdict per armed spec, in spec order.
    pub verdicts: Vec<SloVerdict>,
}

impl SloReport {
    /// Total breached windows across all specs.
    pub fn breaches(&self) -> usize {
        self.verdicts.iter().map(|v| v.breaches.len()).sum()
    }

    /// Names of *enforcing* specs that failed — non-empty means the run
    /// should exit non-zero.
    pub fn enforce_failures(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| v.spec.enforce && !v.pass)
            .map(|v| v.spec.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(start: u32, end: u32, value: u64) -> SloWindowPoint {
        SloWindowPoint { window_start: start, window_end: end, value_milli: value }
    }

    #[test]
    fn evaluate_flags_only_exceeding_windows() {
        let spec = SloSpec::hot_launch_ms("p99-demo", 9900, 250, 4);
        let verdict = SloVerdict::evaluate(
            &spec,
            vec![point(0, 4, 249_000), point(4, 8, 250_000), point(8, 12, 250_001)],
        );
        assert_eq!(verdict.windows, 3);
        assert!(!verdict.pass);
        assert_eq!(verdict.breaches.len(), 1, "only the strict exceedance breaches");
        assert_eq!(verdict.breaches[0].window_start, 8);
        assert_eq!(verdict.breaches[0].threshold_milli, 250_000);
    }

    #[test]
    fn empty_point_stream_passes() {
        let spec = SloSpec::lmk_kills_milli("kills", 2000, 1);
        let verdict = SloVerdict::evaluate(&spec, Vec::new());
        assert!(verdict.pass);
        assert_eq!(verdict.windows, 0);
    }

    #[test]
    fn report_separates_enforced_failures() {
        let soft = SloVerdict::evaluate(
            &SloSpec::hot_launch_ms("soft", 5000, 1, 1),
            vec![point(0, 1, 9_999_999)],
        );
        let hard = SloVerdict::evaluate(
            &SloSpec::hot_launch_ms("hard", 5000, 1, 1).enforced(),
            vec![point(0, 1, 9_999_999)],
        );
        let passing =
            SloVerdict::evaluate(&SloSpec::lmk_kills_milli("ok", 10_000, 1), vec![point(0, 1, 5)]);
        let report = SloReport { verdicts: vec![soft, hard, passing] };
        assert_eq!(report.breaches(), 2);
        assert_eq!(report.enforce_failures(), vec!["hard"]);
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        assert!(SloSpec::hot_launch_ms("", 9900, 250, 4).validate().is_err());
        assert!(SloSpec::hot_launch_ms("w0", 9900, 250, 0).validate().is_err());
        let mut bad_bp = SloSpec::hot_launch_ms("bp", 9900, 250, 4);
        bad_bp.percentile_bp = 10_001;
        assert!(bad_bp.validate().is_err());
        assert!(SloSpec::lmk_kills_milli("ok", 2000, 8).validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let spec = SloSpec::hot_launch_ms("p99", 9900, 250, 4).enforced();
        let verdict = SloVerdict::evaluate(&spec, vec![point(0, 4, 251_000)]);
        let v = serde::Serialize::to_value(&verdict);
        let back: SloVerdict = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, verdict);
    }
}
