//! Per-component observability record log.
//!
//! Mirrors `fleet_audit::EventLog`: each instrumented component (the kernel
//! memory manager, each process heap) owns an [`ObsLog`] that is disabled by
//! default. The device enables the logs it cares about when an
//! [`ObsPipeline`](crate::ObsPipeline) is installed and drains them at
//! deterministic barriers. The [`ObsLog::push`] closure is only invoked when
//! the log is enabled, so a disabled log never constructs a record — the
//! same free-when-off contract the audit layer has.

/// Key:value attributes attached to a span. Keys are static names from the
/// span taxonomy (DESIGN.md §10); values are plain integers (counts, ids,
/// nanosecond durations).
pub type SpanArgs = Vec<(&'static str, u64)>;

/// One span as recorded at an instrumentation site, before placement on the
/// virtual-time tracks.
///
/// Components record spans *relatively*: `depth` gives the nesting level
/// (0 = a root span on the component's track) and `rel_start` the offset in
/// nanoseconds from the start of the enclosing depth-0 span. The
/// [`Tracer`](crate::Tracer) turns these into absolute virtual-time
/// intervals when the batch is fed, clamping children into their parents so
/// nesting is correct by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Track discriminator within the emitting component (the kernel log
    /// uses 0; heap logs use the owning pid).
    pub pid: u32,
    /// Span name from the taxonomy, e.g. `"fault_service"`, `"gc_mark"`.
    pub name: &'static str,
    /// Category, e.g. `"kernel"`, `"gc"`, `"launch"`.
    pub cat: &'static str,
    /// Nesting depth: 0 for root spans, 1 for their children, and so on.
    pub depth: u8,
    /// Start offset in nanos from the enclosing depth-0 span's start.
    pub rel_start: u64,
    /// Duration in nanos.
    pub dur: u64,
    /// Key:value attributes.
    pub args: SpanArgs,
}

/// One record in an [`ObsLog`].
#[derive(Debug, Clone, PartialEq)]
pub enum ObsRecord {
    /// A virtual-time span.
    Span(SpanRec),
    /// Add `delta` to the named monotonic counter.
    Counter {
        /// Metric name, e.g. `"kernel.kswapd_reclaimed_pages"`.
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// Set the named gauge to `value`.
    Gauge {
        /// Metric name.
        name: &'static str,
        /// New value.
        value: u64,
    },
    /// Record one observation in the named latency histogram.
    Latency {
        /// Metric name, e.g. `"kernel.fault_service_ns"`.
        name: &'static str,
        /// Observed latency in nanos.
        nanos: u64,
    },
}

/// A component-owned record log, disabled (and free) by default.
#[derive(Debug, Clone, Default)]
pub struct ObsLog {
    enabled: bool,
    pid: u32,
    records: Vec<ObsRecord>,
}

impl ObsLog {
    /// A new, disabled log.
    pub fn new() -> Self {
        ObsLog::default()
    }

    /// Enables recording, stamping records with `pid`.
    pub fn enable(&mut self, pid: u32) {
        self.enabled = true;
        self.pid = pid;
    }

    /// Disables recording; buffered records stay until drained.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether the log is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Changes the stamped pid without toggling recording.
    pub fn set_pid(&mut self, pid: u32) {
        self.pid = pid;
    }

    /// Records the result of `build` if enabled; `build` receives the
    /// stamped pid and is not invoked on a disabled log.
    #[inline]
    pub fn push(&mut self, build: impl FnOnce(u32) -> ObsRecord) {
        if self.enabled {
            let rec = build(self.pid);
            self.records.push(rec);
        }
    }

    /// Takes all buffered records, leaving the log empty.
    pub fn drain(&mut self) -> Vec<ObsRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(pid: u32) -> ObsRecord {
        ObsRecord::Counter { name: "t", delta: u64::from(pid) }
    }

    #[test]
    fn disabled_log_never_builds() {
        let mut log = ObsLog::new();
        let mut built = false;
        log.push(|_| {
            built = true;
            counter(0)
        });
        assert!(!built);
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_stamps_pid() {
        let mut log = ObsLog::new();
        log.enable(7);
        log.push(counter);
        assert_eq!(log.len(), 1);
        assert_eq!(log.drain(), vec![ObsRecord::Counter { name: "t", delta: 7 }]);
        assert!(log.is_empty());
    }

    #[test]
    fn disable_keeps_buffer_until_drain() {
        let mut log = ObsLog::new();
        log.enable(1);
        log.push(counter);
        log.disable();
        log.push(counter);
        assert_eq!(log.len(), 1);
    }
}
