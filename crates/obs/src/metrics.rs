//! Named counters, gauges, log-bucketed latency histograms and sampled
//! time series, exported as a schema-stable `metrics.json` per experiment.
//!
//! Metric names are dotted `component.metric` paths (DESIGN.md §10);
//! latency metrics end in `_ns`. Histograms bucket by `floor(log2(nanos))`
//! — 64 buckets cover the full u64 range — and report p50/p90/p99/p999 by
//! cumulative rank with linear interpolation inside the matched bucket,
//! which is accurate to within the bucket's 2× width, plenty for
//! order-of-magnitude latency attribution.

use std::collections::BTreeMap;

use serde::{Number, Value};

/// Version stamped into every exported `metrics.json`.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// A log2-bucketed latency histogram.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    fn bucket(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, nanos: u64) {
        self.record_n(nanos, 1);
    }

    /// Records `n` observations of the same value — bulk absorption from a
    /// pre-aggregated source such as a population cohort histogram.
    pub fn record_n(&mut self, nanos: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket(nanos)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(nanos.saturating_mul(n));
        self.max = self.max.max(nanos);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, nanos.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation, nanos.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in [0, 1], interpolated inside the matched
    /// log2 bucket; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if b == 0 { 0u64 } else { 1u64 << b };
                let hi = if b >= 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
                let frac = (rank - seen) as f64 / n as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return (v as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }
}

/// The run-wide registry of named metrics, fed by the pipeline as
/// component logs drain.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, LatencyHistogram>,
    series: BTreeMap<&'static str, Vec<(u64, u64)>>,
}

impl MetricRegistry {
    /// A new, empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Records one observation in the named latency histogram.
    pub fn latency(&mut self, name: &'static str, nanos: u64) {
        self.hists.entry(name).or_default().record(nanos);
    }

    /// Records `n` identical observations into the named latency histogram.
    pub fn latency_n(&mut self, name: &'static str, nanos: u64, n: u64) {
        self.hists.entry(name).or_default().record_n(nanos, n);
    }

    /// Appends a `(virtual-time nanos, value)` point to the named series —
    /// how `KernelStats` totals become time series on the device timeline.
    pub fn sample(&mut self, name: &'static str, at_nanos: u64, value: u64) {
        self.series.entry(name).or_default().push((at_nanos, value));
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists.get(name)
    }

    /// The named time series.
    pub fn series(&self, name: &str) -> Option<&[(u64, u64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Names of all recorded series.
    pub fn series_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.series.keys().copied()
    }

    /// Serializes the registry as the schema-stable `metrics.json`
    /// document (pretty-printed; keys in sorted order).
    pub fn to_json(&self) -> String {
        fn n(v: u64) -> Value {
            Value::Number(Number::PosInt(v))
        }
        let counters: Vec<(String, Value)> =
            self.counters.iter().map(|(&k, &v)| (k.to_string(), n(v))).collect();
        let gauges: Vec<(String, Value)> =
            self.gauges.iter().map(|(&k, &v)| (k.to_string(), n(v))).collect();
        let hists: Vec<(String, Value)> = self
            .hists
            .iter()
            .map(|(&k, h)| {
                (
                    k.to_string(),
                    Value::Object(vec![
                        ("count".into(), n(h.count())),
                        ("sum_ns".into(), n(h.sum())),
                        ("max_ns".into(), n(h.max())),
                        ("p50_ns".into(), n(h.quantile(0.50))),
                        ("p90_ns".into(), n(h.quantile(0.90))),
                        ("p99_ns".into(), n(h.quantile(0.99))),
                        ("p999_ns".into(), n(h.quantile(0.999))),
                    ]),
                )
            })
            .collect();
        let series: Vec<(String, Value)> = self
            .series
            .iter()
            .map(|(&k, points)| {
                (
                    k.to_string(),
                    Value::Array(
                        points.iter().map(|&(t, v)| Value::Array(vec![n(t), n(v)])).collect(),
                    ),
                )
            })
            .collect();
        let doc = Value::Object(vec![
            ("schema_version".into(), n(u64::from(METRICS_SCHEMA_VERSION))),
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(hists)),
            ("series".into(), Value::Object(series)),
        ]);
        serde_json::to_string_pretty(&doc).expect("metrics serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs..1ms uniform
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1_000_000);
        let p50 = h.quantile(0.5);
        // True median 500_500; log2 buckets are 2x wide, so allow that.
        assert!((250_000..=1_000_000).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.999) <= h.max());
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn registry_round_trip() {
        let mut m = MetricRegistry::new();
        m.counter_add("a.b", 2);
        m.counter_add("a.b", 3);
        m.gauge_set("g", 7);
        m.latency("l_ns", 1500);
        m.sample("s", 10, 1);
        m.sample("s", 20, 2);
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.gauge("g"), Some(7));
        assert_eq!(m.histogram("l_ns").unwrap().count(), 1);
        assert_eq!(m.series("s").unwrap(), &[(10, 1), (20, 2)]);
        let json = m.to_json();
        let doc = serde::json::parse(&json).expect("valid json");
        let serde::Value::Object(root) = doc else { panic!("object") };
        assert!(root.iter().any(|(k, _)| k == "schema_version"));
        assert!(root.iter().any(|(k, _)| k == "histograms"));
    }
}
