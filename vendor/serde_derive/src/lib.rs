//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates `serde::Serialize` (`to_value`) and `serde::Deserialize`
//! (`from_value`) impls against the vendored `serde` crate's owned `Value`
//! data model. The token stream is parsed by hand (no `syn`/`quote` in an
//! offline build), which covers the shapes this workspace uses: named /
//! tuple / unit structs and enums with unit, tuple and struct variants,
//! plus simple generics. `#[serde(...)]` attributes are rejected loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by generating a `to_value` implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.impl_serialize().parse().expect("derive(Serialize): generated code failed to parse")
}

/// Derives `serde::Deserialize` by generating a `from_value` implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.impl_deserialize().parse().expect("derive(Deserialize): generated code failed to parse")
}

struct Item {
    name: String,
    /// `<T: Bound, 'a>` — verbatim declaration generics (defaults stripped).
    impl_generics: String,
    /// `<T, 'a>` — parameter names only, for the self type.
    ty_generics: String,
    /// Type-parameter names that need `serde` bounds in the where clause.
    type_params: Vec<String>,
    /// Bounds from an explicit `where` clause on the item, without `where`.
    where_bounds: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn punct_char(t: &TokenTree) -> Option<char> {
    match t {
        TokenTree::Punct(p) => Some(p.as_char()),
        _ => None,
    }
}

fn is_joint(t: &TokenTree) -> bool {
    matches!(t, TokenTree::Punct(p) if p.spacing() == proc_macro::Spacing::Joint)
}

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Skips `#[...]` attribute groups starting at `*i`, panicking on
/// `#[serde(...)]`, which this stand-in cannot honour.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(t) if punct_char(t) == Some('#')) {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if inner.first().and_then(ident_text).as_deref() == Some("serde") {
                    panic!(
                        "#[serde(...)] attributes are not supported by the vendored \
                         serde_derive; hand-write the impl instead (see vendor/README.md)"
                    );
                }
            }
        }
        *i += 2;
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(t) if ident_text(t).as_deref() == Some("pub")) {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let toks: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0;
        skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);

        let keyword = ident_text(&toks[i]).expect("expected `struct` or `enum`");
        assert!(
            keyword == "struct" || keyword == "enum",
            "derive supports only structs and enums, found `{keyword}`"
        );
        i += 1;

        let name = ident_text(&toks[i]).expect("expected type name");
        i += 1;

        // Generics: collect the balanced `<...>` token run, if present.
        let mut generic_toks: Vec<TokenTree> = Vec::new();
        if punct_char(&toks[i]) == Some('<') {
            let mut depth = 0i32;
            loop {
                let t = toks[i].clone();
                i += 1;
                match punct_char(&t) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            generic_toks.push(t);
                            break;
                        }
                    }
                    // `->` inside a bound (fn pointer type): swallow the `>`.
                    Some('-') if is_joint(&t) && punct_char(&toks[i]) == Some('>') => {
                        generic_toks.push(t);
                        generic_toks.push(toks[i].clone());
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
                generic_toks.push(t);
            }
        }
        let (impl_generics, ty_generics, type_params) = split_generics(&generic_toks);

        // Tokens between generics and the body: `where` clause and/or the
        // tuple-struct field list.
        let mut kind = None;
        let mut where_toks: Vec<TokenTree> = Vec::new();
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    kind = Some(if keyword == "struct" {
                        Kind::NamedStruct(parse_field_names(&body))
                    } else {
                        Kind::Enum(parse_variants(&body))
                    });
                    break;
                }
                TokenTree::Group(g)
                    if g.delimiter() == Delimiter::Parenthesis && kind.is_none() =>
                {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    kind = Some(Kind::TupleStruct(count_tuple_fields(&body)));
                    i += 1;
                }
                t if punct_char(t) == Some(';') => {
                    kind.get_or_insert(Kind::UnitStruct);
                    break;
                }
                t => {
                    if ident_text(t).as_deref() != Some("where") {
                        where_toks.push(t.clone());
                    }
                    i += 1;
                }
            }
        }
        let kind = kind.expect("could not find the struct/enum body");
        let where_bounds = tokens_to_string(&where_toks);

        Item { name, impl_generics, ty_generics, type_params, where_bounds, kind }
    }

    fn header(&self, trait_name: &str) -> String {
        let mut bounds: Vec<String> = Vec::new();
        if !self.where_bounds.trim().is_empty() {
            bounds.push(self.where_bounds.clone());
        }
        for p in &self.type_params {
            bounds.push(format!("{p}: ::serde::{trait_name}"));
        }
        let where_clause =
            if bounds.is_empty() { String::new() } else { format!("where {}", bounds.join(", ")) };
        format!(
            "impl{} ::serde::{} for {}{} {}",
            self.impl_generics, trait_name, self.name, self.ty_generics, where_clause
        )
    }

    fn impl_serialize(&self) -> String {
        let body = match &self.kind {
            Kind::NamedStruct(fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                    })
                    .collect();
                format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
            }
            Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::TupleStruct(n) => {
                let items: Vec<String> =
                    (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Kind::UnitStruct => "::serde::Value::Null".to_string(),
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let name = &self.name;
                        let var = &v.name;
                        match &v.fields {
                            VariantFields::Unit => format!(
                                "{name}::{var} => ::serde::Value::String(String::from(\"{var}\"))"
                            ),
                            VariantFields::Tuple(1) => format!(
                                "{name}::{var}(f0) => ::serde::Value::Object(vec![(String::from(\"{var}\"), ::serde::Serialize::to_value(f0))])"
                            ),
                            VariantFields::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|k| format!("f{k}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                    .collect();
                                format!(
                                    "{name}::{var}({}) => ::serde::Value::Object(vec![(String::from(\"{var}\"), ::serde::Value::Array(vec![{}]))])",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            VariantFields::Named(fields) => {
                                let binds = fields.join(", ");
                                let pairs: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{var} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{var}\"), ::serde::Value::Object(vec![{}]))])",
                                    pairs.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(", "))
            }
        };
        format!(
            "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
            self.header("Serialize")
        )
    }

    fn impl_deserialize(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::NamedStruct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::__field(obj, \"{f}\")?)?"
                        )
                    })
                    .collect();
                format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for `{name}`\"))?; \
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Kind::TupleStruct(1) => {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Kind::TupleStruct(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                    .collect();
                format!(
                    "let arr = v.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for `{name}`\"))?; \
                     if arr.len() != {n} {{ return Err(::serde::DeError::custom(\"expected array of length {n} for `{name}`\")); }} \
                     Ok({name}({}))",
                    inits.join(", ")
                )
            }
            Kind::UnitStruct => format!("Ok({name})"),
            Kind::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.fields, VariantFields::Unit))
                    .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                    .collect();
                let data_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let var = &v.name;
                        match &v.fields {
                            VariantFields::Unit => None,
                            VariantFields::Tuple(1) => Some(format!(
                                "\"{var}\" => Ok({name}::{var}(::serde::Deserialize::from_value(inner)?))"
                            )),
                            VariantFields::Tuple(n) => {
                                let inits: Vec<String> = (0..*n)
                                    .map(|k| {
                                        format!("::serde::Deserialize::from_value(&arr[{k}])?")
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{var}\" => {{ \
                                       let arr = inner.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for variant `{var}`\"))?; \
                                       if arr.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong arity for variant `{var}`\")); }} \
                                       Ok({name}::{var}({})) }}",
                                    inits.join(", ")
                                ))
                            }
                            VariantFields::Named(fields) => {
                                let inits: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "{f}: ::serde::Deserialize::from_value(::serde::__field(vf, \"{f}\")?)?"
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{var}\" => {{ \
                                       let vf = inner.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for variant `{var}`\"))?; \
                                       Ok({name}::{var} {{ {} }}) }}",
                                    inits.join(", ")
                                ))
                            }
                        }
                    })
                    .collect();
                format!(
                    "if let Some(s) = v.as_str() {{ \
                       return match s {{ {unit} _ => Err(::serde::DeError::custom(format!(\"unknown variant `{{s}}` of `{name}`\"))) }}; \
                     }} \
                     let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected string or object for enum `{name}`\"))?; \
                     if obj.len() != 1 {{ return Err(::serde::DeError::custom(\"expected single-key object for enum `{name}`\")); }} \
                     let (tag, inner) = &obj[0]; \
                     let _ = inner; \
                     match tag.as_str() {{ {data} _ => Err(::serde::DeError::custom(format!(\"unknown variant `{{tag}}` of `{name}`\"))) }}",
                    unit = if unit_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", unit_arms.join(", "))
                    },
                    data = if data_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", data_arms.join(", "))
                    },
                )
            }
        };
        format!(
            "{} {{ fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }} }}",
            self.header("Deserialize")
        )
    }
}

/// Splits a verbatim `<...>` run into (impl generics with bounds, type
/// generics with names only, the list of type-parameter names).
fn split_generics(toks: &[TokenTree]) -> (String, String, Vec<String>) {
    if toks.is_empty() {
        return (String::new(), String::new(), Vec::new());
    }
    let stripped = strip_defaults(toks);

    let mut names: Vec<String> = Vec::new();
    let mut type_params: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut at_param_start = false;
    let mut i = 0;
    while i < stripped.len() {
        let t = &stripped[i];
        match punct_char(t) {
            Some('<') => {
                depth += 1;
                if depth == 1 {
                    at_param_start = true;
                }
            }
            Some('>') => depth -= 1,
            Some(',') if depth == 1 => at_param_start = true,
            Some('\'') if depth == 1 && at_param_start => {
                let lt = ident_text(&stripped[i + 1]).expect("lifetime name");
                names.push(format!("'{lt}"));
                i += 1;
                at_param_start = false;
            }
            _ => {
                if let Some(id) = ident_text(t) {
                    if depth == 1 && at_param_start {
                        assert!(
                            id != "const",
                            "const generic parameters are not supported by the vendored \
                             serde_derive"
                        );
                        names.push(id.clone());
                        type_params.push(id);
                        at_param_start = false;
                    }
                }
            }
        }
        i += 1;
    }

    let impl_generics = tokens_to_string(&stripped);
    let ty_generics = format!("<{}>", names.join(", "));
    (impl_generics, ty_generics, type_params)
}

/// Removes ` = default` segments from a generics token run.
fn strip_defaults(toks: &[TokenTree]) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < toks.len() {
        match punct_char(&toks[i]) {
            Some('<') => {
                depth += 1;
                out.push(toks[i].clone());
            }
            Some('>') => {
                depth -= 1;
                out.push(toks[i].clone());
            }
            Some('=') if depth == 1 => {
                let mut d = depth;
                i += 1;
                while i < toks.len() {
                    match punct_char(&toks[i]) {
                        Some('<') => d += 1,
                        Some('>') => {
                            d -= 1;
                            if d == 0 {
                                out.push(toks[i].clone());
                                break;
                            }
                        }
                        Some(',') if d == 1 => {
                            out.push(toks[i].clone());
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => out.push(toks[i].clone()),
        }
        i += 1;
    }
    out
}

fn tokens_to_string(toks: &[TokenTree]) -> String {
    let stream: TokenStream = toks.iter().cloned().collect();
    stream.to_string()
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_field_names(toks: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(toks, &mut i);
        let name = ident_text(&toks[i]).expect("expected field name");
        fields.push(name);
        i += 1;
        assert_eq!(punct_char(&toks[i]), Some(':'), "expected `:` after field name");
        i += 1;
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < toks.len() {
            match punct_char(&toks[i]) {
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                Some('-') if is_joint(&toks[i]) && punct_char(&toks[i + 1]) == Some('>') => {
                    i += 1;
                }
                Some(',') if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts top-level fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut i = 0;
    while i < toks.len() {
        match punct_char(&toks[i]) {
            Some('<') => depth += 1,
            Some('>') => depth -= 1,
            Some('-') if is_joint(&toks[i]) && punct_char(&toks[i + 1]) == Some('>') => {
                i += 1;
            }
            Some(',') if depth == 0 && i + 1 < toks.len() => {
                // `i + 1 < len` ignores a trailing comma.
                count += 1;
            }
            _ => {}
        }
        i += 1;
    }
    count
}

/// Parses an enum body into its variants.
fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_text(&toks[i]).expect("expected variant name");
        i += 1;
        let mut fields = VariantFields::Unit;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            fields = match g.delimiter() {
                Delimiter::Parenthesis => VariantFields::Tuple(count_tuple_fields(&body)),
                Delimiter::Brace => VariantFields::Named(parse_field_names(&body)),
                other => panic!("unexpected variant delimiter {other:?}"),
            };
            i += 1;
        }
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() && punct_char(&toks[i]) != Some(',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}
