//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Thin façade over the vendored `serde` crate's [`Value`] data model and
//! its JSON text module: `to_string` / `to_string_pretty` serialise through
//! `Serialize::to_value`, `from_str` parses to a [`Value`] and reconstructs
//! via `Deserialize::from_value`.

#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Serialisation / deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors upstream's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_compact(&value.to_value()))
}

/// Serialises `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_pretty(&value.to_value()))
}

/// Converts any serialisable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors upstream's signature.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Reconstructs a deserialisable type from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Plain {
        name: String,
        ms: f64,
        hits: u64,
        flag: bool,
        maybe: Option<i32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(f64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pair(u32, f64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Generic<T> {
        id: String,
        data: Vec<T>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Event {
        Idle,
        Launch { pid: u64, ms: f64 },
        Tag(String),
        Span(f64, f64),
    }

    #[test]
    fn struct_round_trip_preserves_field_order() {
        let p = Plain { name: "Twitter".into(), ms: 273.5, hits: 12, flag: true, maybe: None };
        let json = super::to_string(&p).unwrap();
        assert_eq!(json, r#"{"name":"Twitter","ms":273.5,"hits":12,"flag":true,"maybe":null}"#);
        assert_eq!(super::from_str::<Plain>(&json).unwrap(), p);
    }

    #[test]
    fn tuple_and_newtype_structs() {
        assert_eq!(super::to_string(&Newtype(1.5)).unwrap(), "1.5");
        assert_eq!(super::from_str::<Newtype>("1.5").unwrap(), Newtype(1.5));
        assert_eq!(super::to_string(&Pair(3, 0.25)).unwrap(), "[3,0.25]");
        assert_eq!(super::from_str::<Pair>("[3,0.25]").unwrap(), Pair(3, 0.25));
    }

    #[test]
    fn generic_struct_round_trip() {
        let g = Generic { id: "fig2".into(), data: vec![1.0f64, 2.5] };
        let json = super::to_string(&g).unwrap();
        assert_eq!(json, r#"{"id":"fig2","data":[1.0,2.5]}"#);
        assert_eq!(super::from_str::<Generic<f64>>(&json).unwrap(), g);
    }

    #[test]
    fn enum_variants_follow_serde_json_conventions() {
        let cases = [
            (Event::Idle, r#""Idle""#),
            (Event::Launch { pid: 9, ms: 12.5 }, r#"{"Launch":{"pid":9,"ms":12.5}}"#),
            (Event::Tag("gc".into()), r#"{"Tag":"gc"}"#),
            (Event::Span(0.5, 1.5), r#"{"Span":[0.5,1.5]}"#),
        ];
        for (event, expected) in cases {
            assert_eq!(super::to_string(&event).unwrap(), expected);
            assert_eq!(super::from_str::<Event>(expected).unwrap(), event);
        }
    }

    #[test]
    fn unknown_variant_is_an_error() {
        assert!(super::from_str::<Event>(r#""Nope""#).is_err());
        assert!(super::from_str::<Event>(r#"{"Nope":1}"#).is_err());
    }

    #[test]
    fn pretty_printing_matches_upstream_layout() {
        let g = Generic { id: "t".into(), data: vec![1u64] };
        assert_eq!(
            super::to_string_pretty(&g).unwrap(),
            "{\n  \"id\": \"t\",\n  \"data\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn value_access_matches_serde_json_idioms() {
        let v: super::Value =
            super::from_str(r#"{"data":[{"value":273.0}],"id":"fig_test"}"#).unwrap();
        assert_eq!(v["id"], "fig_test");
        assert_eq!(v["data"][0]["value"], 273.0);
    }
}
