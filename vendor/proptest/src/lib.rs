//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, range / tuple / `any` / [`Just`](strategy::Just)
//! strategies, `prop_map` / `prop_flat_map`, and [`collection::vec`]. Cases
//! are generated from a deterministic per-test seed (hash of the test name),
//! so runs are reproducible; there is **no shrinking** — a failing case
//! reports its generated inputs via the assertion message instead.

#![warn(missing_docs)]

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max_exclusive: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking; a
    /// strategy simply draws one value per test case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice between several strategies of the same value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`; each is picked with equal probability.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-domain generation for `any::<T>()`.
    pub trait ArbitrarySample: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitrarySample for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitrarySample for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitrarySample for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: keeps arithmetic-heavy properties meaningful.
            rng.unit() * 2e9 - 1e9
        }
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Strategy over the full domain of `T` (upstream `any::<T>()`).
    pub fn any<T: ArbitrarySample>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitrarySample> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Test execution: configuration, RNG and failure type.
pub mod test_runner {
    use std::fmt;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl fmt::Display) -> Self {
            TestCaseError { msg: msg.to_string() }
        }

        /// Upstream-compatible alias for [`TestCaseError::fail`].
        pub fn reject(msg: impl fmt::Display) -> Self {
            TestCaseError::fail(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives the cases of one property.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        cases: u32,
        seed: u64,
    }

    impl TestRunner {
        /// A runner whose seed derives from the test `name`, so every run
        /// (and every machine) generates identical cases.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner { cases: config.cases, seed }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The RNG for one case.
        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::from_seed(self.seed ^ (((case as u64) << 32) | 0x5ca1_ab1e))
        }
    }
}

/// The glob import every test file starts with.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: `fn name(binding in strategy, ...) { body }`.
///
/// As in upstream proptest, the `#[test]` attribute is written explicitly on
/// each function inside the block. Every function runs `cases` deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($param:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $param = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest `{}` case {case} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case with a
/// `TestCaseError` instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn runner_is_deterministic_per_name() {
        let a = TestRunner::new(ProptestConfig::with_cases(4), "alpha");
        let b = TestRunner::new(ProptestConfig::with_cases(4), "alpha");
        let mut ra = a.rng_for_case(0);
        let mut rb = b.rng_for_case(0);
        assert_eq!(ra.next_u64(), rb.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..4.5, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..4.5).contains(&f));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in crate::collection::vec(0u8..10, 2..6),
            exact in crate::collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn combinators_compose(
            pair in (0u32..5, 0u32..5).prop_map(|(a, b)| (a, a + b)),
            nested in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..100, n)),
            tag in prop_oneof![Just(0u8), 1u8..3, Just(9u8)],
        ) {
            prop_assert!(pair.1 >= pair.0);
            prop_assert!(!nested.is_empty() && nested.len() < 4);
            prop_assert!(tag == 0 || tag == 9 || (1..3).contains(&tag));
        }
    }
}
