//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the `rand 0.8` API this workspace uses:
//! [`rngs::StdRng`], [`RngCore`], [`SeedableRng`] and the [`Rng`] extension
//! trait with `gen` / `gen_range`. The generator is xoshiro256\*\* seeded
//! via SplitMix64 — deterministic, but *not* stream-compatible with
//! upstream's ChaCha12-based `StdRng`.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open `Range`.
pub trait UniformSample: Sized {
    /// Draws one value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift (Lemire) without the rejection step: the
                // bias is < span / 2^64, far below what the simulator or
                // tests can observe, and the mapping stays deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full-domain distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    ///
    /// Deterministic and `Clone`-able; not stream-compatible with upstream
    /// `rand`'s ChaCha12 `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let i: usize = rng.gen_range(0..3);
            assert!(i < 3);
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn streams_cover_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0;
        for _ in 0..1000 {
            if rng.gen::<u64>() < u64::MAX / 2 {
                low += 1;
            }
        }
        assert!((350..=650).contains(&low), "suspicious distribution: {low}");
    }
}
