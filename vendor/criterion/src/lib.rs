//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion`], [`criterion_group!`] / [`criterion_main!`],
//! benchmark groups, `bench_function`, `iter` / `iter_batched_ref` and
//! [`BatchSize`]. Instead of criterion's statistical engine it runs a small
//! fixed number of timed iterations and prints a median per benchmark —
//! enough to smoke-test the bench targets and get a rough number offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Controls per-batch amortisation in upstream criterion; accepted and
/// ignored here (every batch has one iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; upstream runs many iterations per batch.
    SmallInput,
    /// Large setup output; upstream runs one iteration per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Entry point handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; upstream flushes reports here).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        if bencher.iters > 0 {
            samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    println!("bench: {name:<50} median {:>12.1} ns/iter ({} samples)", median, samples.len());
}

/// Times closures for one sample.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: u64 = 10;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Times `routine` over a mutable reference to a fresh `setup` output,
    /// excluding setup time from the measurement.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        const BATCHES: u64 = 3;
        for _ in 0..BATCHES {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched_ref`] but passes the input by value.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const BATCHES: u64 = 3;
        for _ in 0..BATCHES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group of benchmark functions, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench harness entry point, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched_ref(Vec::<u64>::new, |v| v.push(1), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2) * 3));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
