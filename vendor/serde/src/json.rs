//! JSON text encoding and decoding for the [`Value`](crate::Value) model.
//!
//! Lives in the `serde` stand-in so that `Display` for `Value` can use it;
//! the `serde_json` façade crate re-exports the entry points. Floats print
//! via Rust's shortest-round-trip `Display` with a `.0` suffix for integral
//! values, so `f64` survives a text round-trip bit-exactly.

use crate::{DeError, Number, Value};
use std::fmt::Write as _;

/// Compact encoding: no whitespace, `,` and `:` separators.
pub fn to_compact(v: &Value) -> String {
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

/// Pretty encoding: two-space indent, upstream-`serde_json` layout.
pub fn to_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                let start = out.len();
                let _ = write!(out, "{v}");
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json encodes non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns a [`DeError`] describing the first syntax error.
pub fn parse(text: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DeError {
        DeError::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, DeError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    self.expect(b'\\')?;
                    self.expect(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            self.pos += 1;
            code = code * 16 + (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if float {
            Number::Float(text.parse().map_err(|_| self.err("invalid float"))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Keep negative integers exact when they fit.
            match stripped.parse::<u64>() {
                Ok(mag) if mag <= i64::MAX as u64 + 1 => Number::NegInt((-(mag as i128)) as i64),
                _ => Number::Float(text.parse().map_err(|_| self.err("invalid number"))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("invalid number"))?),
            }
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("fig2".into())),
            (
                "rows".into(),
                Value::Array(vec![
                    Value::Number(Number::Float(273.5)),
                    Value::Number(Number::PosInt(12)),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_compact(&v), to_pretty(&v)] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v =
            Value::Object(vec![("a".into(), Value::Array(vec![Value::Number(Number::PosInt(1))]))]);
        assert_eq!(to_pretty(&v), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 273.0, 1e-12, 123456789.123456, f64::MIN_POSITIVE] {
            let text = to_compact(&Value::Number(Number::Float(f)));
            match parse(&text).unwrap() {
                Value::Number(n) => assert_eq!(n.as_f64(), f, "{text}"),
                other => panic!("{other:?}"),
            }
        }
        // Integral floats keep a trailing `.0` so they stay floats.
        assert_eq!(to_compact(&Value::Number(Number::Float(273.0))), "273.0");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}\u{1F600}";
        let text = to_compact(&Value::String(s.into()));
        assert_eq!(parse(&text).unwrap(), Value::String(s.into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("\u{1F600}".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
