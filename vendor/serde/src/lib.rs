//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Instead of upstream's visitor-based `Serializer`/`Deserializer` pair,
//! this implementation routes everything through one owned, insertion-ordered
//! data model ([`Value`]) — exactly what a JSON-only workspace needs. The
//! derive macros (re-exported from `serde_derive`) generate `to_value` /
//! `from_value` implementations matching upstream serde's JSON conventions:
//! structs as objects in field order, tuples as arrays, unit enum variants
//! as strings and data-carrying variants externally tagged.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

pub mod json;

/// An owned JSON-shaped value. Object fields keep insertion order so struct
/// serialisation matches upstream serde's field order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned or signed integer kept exact, or a float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating-point number.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl Value {
    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up an array element by index.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        self.as_array()?.get(index)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&json::to_compact(self))
    }
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialise into the [`Value`] data model.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialise from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: looks up a required struct field.
///
/// # Errors
///
/// Returns a [`DeError`] naming the missing field.
pub fn __field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

// ------------------------------------------------------------ Serialize impls

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------- Deserialize impls

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected boolean"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::custom("expected integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::custom("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::custom("expected object"))?;
        obj.iter().map(|(k, raw)| Ok((k.clone(), V::from_value(raw)?))).collect()
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::custom("expected array"))?;
                if arr.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected array of length {}, got {}",
                        $len,
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4; 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5; 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_index_and_eq() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("Twitter".into())),
            ("ms".into(), Value::Number(Number::Float(273.0))),
        ]);
        assert_eq!(v["name"], "Twitter");
        assert_eq!(v["ms"], 273.0);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let pair = (3u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&pair.to_value()).unwrap(), pair);
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn float_deserialize_accepts_integers() {
        assert_eq!(f64::from_value(&Value::Number(Number::PosInt(4))).unwrap(), 4.0);
    }
}
