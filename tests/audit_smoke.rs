//! Randomized end-to-end smoke test under the online invariant auditor.
//!
//! Seeded random launch/switch/kill scenarios stream every cross-layer
//! transition through the flight recorder and the shadow-state auditor
//! (which panics with the event ring on the first violation), and the
//! canonical event-stream hash must be bit-identical across two runs of
//! the same scenario.
#![cfg(feature = "audit")]

use fleet::audit::{install, shared_pipeline};
use fleet::{Device, DeviceConfig, SchemeKind};
use fleet_apps::profile_by_name;

const APPS: [&str; 4] = ["Twitter", "Youtube", "Chrome", "Telegram"];

/// splitmix64 — the scenario script generator. Independent from the
/// device's own seeded RNG streams so scenario shape and simulation noise
/// cannot alias.
struct Script(u64);

impl Script {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Runs one seeded scenario with the auditor installed and returns the
/// recorder fingerprint `(event_count, hash)`.
fn run_scenario(scheme: SchemeKind, seed: u64) -> (u64, u64) {
    let pipeline = shared_pipeline();
    let _guard = install(pipeline.clone());
    let mut config = DeviceConfig::pixel3(scheme);
    config.seed = seed;
    let mut dev = Device::new(config);
    let mut script = Script(seed);
    for _ in 0..30 {
        match script.below(10) {
            0..=3 => {
                let app = profile_by_name(APPS[script.below(APPS.len() as u64) as usize]).unwrap();
                dev.launch_cold(&app);
            }
            4..=6 => {
                let alive = dev.alive();
                if !alive.is_empty() {
                    let pid = alive[script.below(alive.len() as u64) as usize];
                    if dev.foreground() != Some(pid) {
                        dev.switch_to(pid);
                    }
                }
            }
            7 => {
                let alive = dev.alive();
                if !alive.is_empty() {
                    dev.kill(alive[script.below(alive.len() as u64) as usize]);
                }
            }
            _ => dev.run(1 + script.below(5)),
        }
    }
    drop(dev);
    let pipe = pipeline.lock().unwrap();
    assert_eq!(pipe.auditor().violations(), 0, "auditor must stay clean");
    assert!(pipe.recorder().event_count() > 0, "scenario must record events");
    (pipe.recorder().event_count(), pipe.recorder().hash())
}

#[test]
fn random_scenarios_audit_clean_and_hash_deterministically() {
    for scheme in SchemeKind::ALL {
        for seed in 1..=2 {
            let first = run_scenario(scheme, seed);
            let second = run_scenario(scheme, seed);
            assert_eq!(first, second, "{scheme} seed {seed}: event stream must be deterministic");
        }
    }
}

#[test]
fn different_seeds_produce_different_event_streams() {
    let a = run_scenario(SchemeKind::Fleet, 101);
    let b = run_scenario(SchemeKind::Fleet, 202);
    assert_ne!(a.1, b.1, "seeds must shape the scenario and its trace");
}

/// Like [`run_scenario`], but against a flaky flash device: launches may
/// fail with SIGBUS kills mid-scenario (tolerated via `try_switch_to`),
/// and the fifth invariant family (SwapIoError / FaultRetry / LmkKill /
/// EvacAbort) is live. The auditor must stay clean and the stream must
/// still hash deterministically.
fn run_faulty_scenario(scheme: SchemeKind, seed: u64, intensity: f64) -> (u64, u64) {
    use fleet_kernel::FaultConfig;
    let pipeline = shared_pipeline();
    let _guard = install(pipeline.clone());
    let config = fleet::DeviceConfig::builder(scheme)
        .seed(seed)
        .fault(FaultConfig::flaky_flash(intensity))
        .build()
        .unwrap();
    let mut dev = Device::try_new(config).unwrap();
    let mut script = Script(seed ^ 0xFA17);
    for _ in 0..30 {
        match script.below(10) {
            0..=3 => {
                let app = profile_by_name(APPS[script.below(APPS.len() as u64) as usize]).unwrap();
                dev.launch_cold(&app);
            }
            4..=6 => {
                let alive = dev.alive();
                if !alive.is_empty() {
                    let pid = alive[script.below(alive.len() as u64) as usize];
                    if dev.foreground() != Some(pid) {
                        // A SIGBUS mid-launch is a legal degraded outcome.
                        let _ = dev.try_switch_to(pid);
                    }
                }
            }
            7 => {
                let alive = dev.alive();
                if !alive.is_empty() {
                    dev.kill(alive[script.below(alive.len() as u64) as usize]);
                }
            }
            _ => dev.run(1 + script.below(5)),
        }
    }
    drop(dev);
    let pipe = pipeline.lock().unwrap();
    assert_eq!(pipe.auditor().violations(), 0, "auditor must stay clean under faults");
    assert!(pipe.recorder().event_count() > 0, "scenario must record events");
    (pipe.recorder().event_count(), pipe.recorder().hash())
}

#[test]
fn faulty_scenarios_audit_clean_and_hash_deterministically() {
    for scheme in SchemeKind::ALL {
        let first = run_faulty_scenario(scheme, 3, 0.05);
        let second = run_faulty_scenario(scheme, 3, 0.05);
        assert_eq!(first, second, "{scheme}: faulty event stream must be deterministic");
    }
    // A harsh plan must degrade, not panic or corrupt shadow state.
    run_faulty_scenario(SchemeKind::Fleet, 9, 0.4);
}
