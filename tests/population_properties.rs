//! Population-layer contracts: splittable seeds, aggregation differentials
//! and sampler distribution sanity (DESIGN.md §12).
//!
//! Three layers pin the cohort machinery down:
//!
//! * **Splittable-seed proptest** — for random specs, re-simulating any
//!   sampled device-day standalone from its derived seed is byte-identical
//!   (event-stream fingerprint + serialised row) to its in-population run,
//!   and the parallel cohort runner folds to the same bytes as a naive
//!   serial fold over those standalone rows.
//! * **Aggregation differential** — the batched exporter's counters,
//!   histogram buckets and percentiles equal the naive serial fold, for
//!   1-thread and N-thread runs, down to identical export JSON.
//! * **Sampler sanity** — at n = 10k, draws respect configured bounds and
//!   land near configured frequencies; degenerate (zero-variance) specs
//!   reduce exactly to today's fixed-config runs.

use fleet::population::{
    device_seed, run_device_day, run_population, sample_device, DevicePlan, PopulationAggregate,
    PopulationSpec, RangeF64, RangeU32, SLICE_LEN,
};
use fleet::{DeviceConfig, SchemeKind};
use proptest::prelude::*;

/// Serialises anything the export layer would write, for byte equality.
fn json_of<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("value serialises")
}

/// A cohort spec kept deliberately tiny: property cases simulate every
/// device-day twice, so the day shape must stay cheap in debug builds.
fn tiny_spec(
    seed: u64,
    devices: u32,
    zram_chance: f64,
    schemes: Vec<SchemeKind>,
) -> PopulationSpec {
    let mut spec = PopulationSpec::default_mix(seed, devices);
    spec.schemes = schemes;
    for class in &mut spec.classes {
        class.dram_mib = RangeU32 { lo: 2560, hi: 3072 };
        class.zram_chance = zram_chance;
    }
    for persona in &mut spec.personas {
        persona.working_set = RangeU32 { lo: 2, hi: 2 };
        persona.cycles = RangeU32 { lo: 1, hi: 2 };
        persona.usage_gap_secs = RangeU32 { lo: 5, hi: 8 };
    }
    spec.validate().expect("tiny spec stays valid");
    spec
}

fn scheme_mix_strategy() -> impl Strategy<Value = Vec<SchemeKind>> {
    prop_oneof![
        Just(vec![SchemeKind::Fleet]),
        Just(vec![SchemeKind::Android, SchemeKind::Fleet]),
        Just(SchemeKind::ALL.to_vec()),
    ]
}

fn tiny_spec_strategy() -> impl Strategy<Value = PopulationSpec> {
    (any::<u64>(), 2u32..5, prop_oneof![Just(0.0), Just(0.5), Just(1.0)], scheme_mix_strategy())
        .prop_map(|(seed, devices, zram, schemes)| tiny_spec(seed, devices, zram, schemes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The splittable-seed contract: any device-day of the cohort re-runs
    /// standalone to the same bytes, and the cohort aggregate equals the
    /// naive serial fold over those standalone rows — for a sequential
    /// *and* a multi-worker run.
    #[test]
    fn device_days_resimulate_byte_identically(spec in tiny_spec_strategy()) {
        let mut naive = PopulationAggregate::new(spec.devices, SLICE_LEN);
        for index in 0..spec.devices {
            let plan = sample_device(&spec, index).unwrap();
            prop_assert_eq!(plan.seed, device_seed(spec.seed, index));
            let in_population = run_device_day(&plan).unwrap();
            // Standalone re-run from nothing but (spec, index).
            let standalone = run_device_day(&sample_device(&spec, index).unwrap()).unwrap();
            prop_assert_eq!(standalone.fingerprint, in_population.fingerprint);
            prop_assert_eq!(json_of(&standalone), json_of(&in_population));
            naive.absorb(&in_population);
        }
        let sequential = run_population(&spec, 1).unwrap();
        let parallel = run_population(&spec, 3).unwrap();
        prop_assert_eq!(&sequential.aggregate, &naive);
        prop_assert_eq!(&parallel.aggregate, &naive);
        prop_assert_eq!(json_of(&sequential.aggregate), json_of(&naive));
    }
}

/// The batched exporter vs a naive serial fold, in detail: counters,
/// histogram buckets, derived percentiles and slice rows, for 1 and N
/// worker threads, down to identical export JSON bytes.
#[test]
fn aggregation_differential_against_naive_fold() {
    let spec = tiny_spec(0xC0_40_47, 9, 0.5, SchemeKind::ALL.to_vec());
    let mut naive = PopulationAggregate::new(spec.devices, SLICE_LEN);
    for index in 0..spec.devices {
        naive.absorb(&run_device_day(&sample_device(&spec, index).unwrap()).unwrap());
    }
    for threads in [1, 4] {
        let run = run_population(&spec, threads).unwrap();
        let agg = &run.aggregate;
        assert_eq!(agg.devices, naive.devices, "{threads} threads");
        assert_eq!(agg.launches, naive.launches);
        assert_eq!(agg.lmk_kills, naive.lmk_kills);
        assert_eq!(agg.faults, naive.faults);
        assert_eq!(agg.cohort_hash, naive.cohort_hash);
        assert_eq!(agg.hot_launch_us.buckets(), naive.hot_launch_us.buckets());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(agg.hot_launch_us.quantile(q), naive.hot_launch_us.quantile(q));
        }
        assert_eq!(agg.slices, naive.slices);
        assert_eq!(agg, &naive);
        assert_eq!(json_of(agg), json_of(&naive), "export bytes must not depend on threads");
    }
}

// ---------------------------------------------------------- sampler sanity

/// 10k draws from the standard mix: every sampled value respects its
/// configured bounds and grids.
#[test]
fn sampled_devices_respect_bounds_at_10k() {
    let spec = PopulationSpec::default_mix(0xF1EE7, 10_000);
    for index in 0..spec.devices {
        let plan = sample_device(&spec, index).unwrap();
        let class = spec.classes.iter().find(|c| c.name == plan.class).expect("known class");
        let persona = spec.personas.iter().find(|p| p.name == plan.persona).expect("known persona");
        let dram = plan.config.dram_mib;
        assert!(dram >= class.dram_mib.lo && dram <= class.dram_mib.hi, "device {index}");
        assert_eq!((dram - class.dram_mib.lo) % 256, 0, "DRAM off the 256 MiB grid");
        let ratio = plan.config.swap_mib as f64 / dram as f64;
        // round() moves the realised ratio by at most half a MiB.
        assert!(ratio >= class.swap_ratio.lo - 0.01 && ratio <= class.swap_ratio.hi + 0.01);
        assert!(
            plan.config.swappiness >= class.swappiness.lo
                && plan.config.swappiness <= class.swappiness.hi
        );
        if let Some(front) = plan.config.zram_front {
            assert!(class.zram_chance > 0.0, "zram sampled with zero chance");
            assert_ne!(plan.config.scheme, SchemeKind::AndroidNoSwap);
            let fraction = front.mib as f64 / plan.config.swap_mib as f64;
            assert!(
                fraction >= class.zram_fraction.lo - 0.01
                    && fraction <= class.zram_fraction.hi + 0.01
            );
            assert!(
                front.compression_ratio >= class.zram_ratio.lo
                    && front.compression_ratio <= class.zram_ratio.hi
            );
        }
        let k = plan.apps.len() as u32;
        assert!(k >= persona.working_set.lo && k <= persona.working_set.hi);
        for app in &plan.apps {
            assert!(persona.apps.contains(app), "app outside the persona list");
        }
        assert!(plan.cycles >= persona.cycles.lo && plan.cycles <= persona.cycles.hi);
        assert!(
            plan.usage_gap_secs >= persona.usage_gap_secs.lo
                && plan.usage_gap_secs <= persona.usage_gap_secs.hi
        );
    }
}

/// 10k draws hit configured frequencies within tolerance: class and
/// persona weights, the uniform scheme mix, and per-class zram adoption.
#[test]
fn sampled_frequencies_match_weights_at_10k() {
    let spec = PopulationSpec::default_mix(0xBEEF, 10_000);
    let n = spec.devices as f64;
    let plans: Vec<DevicePlan> =
        (0..spec.devices).map(|i| sample_device(&spec, i).unwrap()).collect();

    // Binomial sd at n=10k is ≤ 0.5pp for these rates; ±3pp is ~6 sigma.
    let tolerance = 0.03;
    let class_weight_total: f64 = spec.classes.iter().map(|c| c.weight as f64).sum();
    for class in &spec.classes {
        let got = plans.iter().filter(|p| p.class == class.name).count() as f64 / n;
        let want = class.weight as f64 / class_weight_total;
        assert!(
            (got - want).abs() < tolerance,
            "class {}: {got:.3} vs configured {want:.3}",
            class.name
        );
    }
    let persona_weight_total: f64 = spec.personas.iter().map(|p| p.weight as f64).sum();
    for persona in &spec.personas {
        let got = plans.iter().filter(|p| p.persona == persona.name).count() as f64 / n;
        let want = persona.weight as f64 / persona_weight_total;
        assert!(
            (got - want).abs() < tolerance,
            "persona {}: {got:.3} vs configured {want:.3}",
            persona.name
        );
    }
    for &scheme in &spec.schemes {
        let got = plans.iter().filter(|p| p.config.scheme == scheme).count() as f64 / n;
        let want = 1.0 / spec.schemes.len() as f64;
        assert!((got - want).abs() < tolerance, "scheme {scheme}: {got:.3} vs uniform {want:.3}");
    }
    // Zram adoption, conditioned on (class, swap-capable scheme).
    for class in &spec.classes {
        let eligible: Vec<_> = plans
            .iter()
            .filter(|p| p.class == class.name && p.config.scheme != SchemeKind::AndroidNoSwap)
            .collect();
        let got = eligible.iter().filter(|p| p.config.zram_front.is_some()).count() as f64
            / eligible.len() as f64;
        assert!(
            (got - class.zram_chance).abs() < 2.0 * tolerance,
            "class {} zram adoption: {got:.3} vs configured {:.3}",
            class.name,
            class.zram_chance
        );
    }
    // DRAM spreads across the grid: every step of the widest class shows up.
    let mid = &spec.classes[1];
    let steps = (mid.dram_mib.hi - mid.dram_mib.lo) / 256 + 1;
    let distinct: std::collections::BTreeSet<u32> =
        plans.iter().filter(|p| p.class == mid.name).map(|p| p.config.dram_mib).collect();
    assert_eq!(distinct.len() as u32, steps, "class {} missed DRAM grid points", mid.name);
}

/// The degeneracy contract: a zero-variance spec samples exactly today's
/// fixed Pixel 3 configuration (only the seed differs), and its device-day
/// is byte-identical to running the hand-built fixed-config plan.
#[test]
fn degenerate_spec_reduces_to_fixed_config_run() {
    let apps: Vec<String> = ["Twitter", "Telegram"].iter().map(|s| s.to_string()).collect();
    let spec = PopulationSpec::degenerate(0x5EED, 2, SchemeKind::Fleet, &apps);
    for index in 0..spec.devices {
        let sampled = sample_device(&spec, index).unwrap();
        // Exactly the fixed config, seed aside.
        let mut fixed_config = DeviceConfig::pixel3(SchemeKind::Fleet);
        fixed_config.seed = device_seed(spec.seed, index);
        assert_eq!(sampled.config, fixed_config);
        // And exactly the fixed plan: a hand-built DevicePlan over that
        // config runs to the same bytes as the sampled one.
        let fixed_plan = DevicePlan {
            index,
            seed: fixed_config.seed,
            class: "pixel3".to_string(),
            persona: "fixed".to_string(),
            config: fixed_config,
            apps: apps.clone(),
            cycles: 4,
            usage_gap_secs: 30,
        };
        assert_eq!(sampled, fixed_plan);
        let a = run_device_day(&sampled).unwrap();
        let b = run_device_day(&fixed_plan).unwrap();
        assert_eq!(json_of(&a), json_of(&b));
    }
}

/// The documented draw order is stable: widening the last-drawn range
/// (usage gap) cannot move any draw made before it.
#[test]
fn widening_the_last_range_leaves_earlier_draws_untouched() {
    let base = tiny_spec(0xAB, 4, 0.0, vec![SchemeKind::Fleet]);
    let mut widened = base.clone();
    // usage_gap is the LAST draw: widening it must not move anything else.
    for persona in &mut widened.personas {
        persona.usage_gap_secs = RangeU32 { lo: 5, hi: 60 };
    }
    for index in 0..base.devices {
        let a = sample_device(&base, index).unwrap();
        let b = sample_device(&widened, index).unwrap();
        assert_eq!(a.config, b.config, "earlier draws moved");
        assert_eq!(a.apps, b.apps);
        assert_eq!(a.cycles, b.cycles);
    }
}

/// `RangeF64::fixed` round-trips exactly (no float drift in degeneracy).
#[test]
fn fixed_float_range_is_exact() {
    let r = RangeF64::fixed(0.5);
    assert_eq!(r.lo, r.hi);
    let swap = DeviceConfig::pixel3(SchemeKind::Fleet);
    assert_eq!((swap.dram_mib as f64 * 0.5).round() as u32, swap.swap_mib);
}
