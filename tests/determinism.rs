//! Determinism: identical seeds must produce bit-identical runs.
//!
//! Every stochastic decision flows through seeded RNG streams and every
//! container iterates in a deterministic order; these tests pin that down,
//! because the reproduction harness depends on it.

use fleet::{Device, DeviceConfig, SchemeKind};
use fleet_apps::{profile_by_name, synthetic_app};
use fleet_kernel::FaultConfig;

/// A condensed fingerprint of a device run.
fn fingerprint(scheme: SchemeKind, seed: u64) -> String {
    let mut config = DeviceConfig::pixel3(scheme);
    config.seed = seed;
    let mut dev = Device::new(config);
    let (a, cold_a) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
    dev.run(8);
    let (b, _) = dev.launch_cold(&profile_by_name("Youtube").unwrap());
    dev.run(20);
    let hot_a = dev.switch_to(a);
    dev.run(8);
    let hot_b = dev.switch_to(b);
    dev.run(4);
    let mm = dev.mm();
    format!(
        "{:?}|{:?}|{:?}|faults={} swapped_out={} frames={} kills={} t={}",
        cold_a,
        hot_a,
        hot_b,
        mm.stats().faults,
        mm.stats().pages_swapped_out,
        mm.used_frames(),
        dev.kills().len(),
        dev.now(),
    )
}

#[test]
fn same_seed_is_bit_identical_for_every_scheme() {
    for scheme in SchemeKind::ALL {
        let a = fingerprint(scheme, 42);
        let b = fingerprint(scheme, 42);
        assert_eq!(a, b, "{scheme} must be deterministic");
    }
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(SchemeKind::Fleet, 1);
    let b = fingerprint(SchemeKind::Fleet, 2);
    assert_ne!(a, b, "seeds must matter (launch jitter, graph shapes)");
}

/// Like [`fingerprint`], but under an armed fault plan: launches may fail
/// (SIGBUS mid-launch) and the fingerprint additionally pins the
/// degradation counters.
fn faulty_fingerprint(scheme: SchemeKind, seed: u64, intensity: f64) -> String {
    let config = DeviceConfig::builder(scheme)
        .seed(seed)
        .fault(FaultConfig::flaky_flash(intensity))
        .build()
        .unwrap();
    let mut dev = Device::try_new(config).unwrap();
    let (a, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
    dev.run(8);
    let (b, _) = dev.launch_cold(&profile_by_name("Youtube").unwrap());
    dev.run(20);
    let hot_a = dev.try_switch_to(a);
    dev.run(8);
    let hot_b = dev.try_switch_to(b);
    dev.run(4);
    let mm = dev.mm();
    format!(
        "{:?}|{:?}|faults={} retries={} read_errs={} write_errs={} lost={} \
         sigbus={} lmk={} esc={} map_fail={} frames={} kills={} t={}",
        hot_a,
        hot_b,
        mm.stats().faults,
        mm.stats().fault_retries,
        mm.stats().swap_read_errors,
        mm.stats().swap_write_errors,
        mm.stats().pages_lost,
        dev.sigbus_kills(),
        dev.reclaim().total_kills(),
        dev.reclaim().escalations(),
        dev.map_failures(),
        mm.used_frames(),
        dev.kills().len(),
        dev.now(),
    )
}

#[test]
fn armed_fault_plans_are_deterministic_and_never_panic() {
    for scheme in SchemeKind::ALL {
        let a = faulty_fingerprint(scheme, 42, 0.05);
        let b = faulty_fingerprint(scheme, 42, 0.05);
        assert_eq!(a, b, "{scheme} under faults must be deterministic");
    }
    // A harsher plan still completes without panicking.
    let _ = faulty_fingerprint(SchemeKind::Fleet, 7, 0.5);
}

#[test]
fn quiet_fault_plan_is_bit_identical_to_no_plan() {
    // FaultConfig::default() must not change a single observable byte —
    // the property the golden-trace gate rests on.
    let quiet = {
        let config = DeviceConfig::builder(SchemeKind::Fleet)
            .seed(42)
            .fault(FaultConfig::default())
            .build()
            .unwrap();
        assert!(config.fault.is_quiet());
        config
    };
    let mut dev = Device::try_new(quiet).unwrap();
    let (a, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
    dev.run(10);
    let hot = dev.switch_to(a);
    let with_plan = format!("{:?}|{}|{}", hot, dev.mm().stats().faults, dev.mm().used_frames());
    assert_eq!(dev.sigbus_kills(), 0);
    assert_eq!(dev.mm().stats().fault_retries, 0);

    let mut dev2 = Device::new({
        let mut c = DeviceConfig::pixel3(SchemeKind::Fleet);
        c.seed = 42;
        c
    });
    let (a2, _) = dev2.launch_cold(&profile_by_name("Twitter").unwrap());
    dev2.run(10);
    let hot2 = dev2.switch_to(a2);
    let without_plan =
        format!("{:?}|{}|{}", hot2, dev2.mm().stats().faults, dev2.mm().used_frames());
    assert_eq!(with_plan, without_plan, "quiet plan diverged from plan-free device");
}

#[test]
fn capacity_run_is_deterministic() {
    let run = || {
        let mut dev = Device::new(DeviceConfig::pixel3(SchemeKind::Android));
        let app = synthetic_app(2048, 180);
        let mut curve = Vec::new();
        for _ in 0..14 {
            dev.launch_cold(&app);
            dev.run(6);
            curve.push(dev.cached_apps());
        }
        (curve, dev.kills().len(), dev.mm().swap().used_pages())
    };
    assert_eq!(run(), run());
}

/// Runs a cheap slice of the registry and fingerprints everything a user
/// can observe: the rendered text and the export JSON.
fn harness_fingerprint(threads: usize) -> String {
    use fleet::experiment::export::ExportRecord;
    use fleet::experiment::harness::{run_experiments, select};

    let selected = select(&[
        "table1".into(),
        "table2".into(),
        "table3".into(),
        "fig4".into(),
        "proactive_reclaim".into(),
    ])
    .unwrap();
    let reports = run_experiments(&selected, 0xF1EE7, true, threads, false, None);
    let mut fp = String::new();
    for report in reports {
        let output = report.result.expect("experiment runs");
        fp.push_str(report.id);
        fp.push_str(&output.render());
        for artifact in &output.exports {
            let record = ExportRecord::new(&artifact.id, &artifact.paper, &artifact.data);
            fp.push_str(&record.to_json().expect("export serialises"));
        }
    }
    fp
}

#[test]
fn parallel_and_sequential_harness_runs_are_bit_identical() {
    // The harness derives every experiment's seed from (master seed, id),
    // so rendered output and export JSON cannot depend on scheduling.
    let sequential = harness_fingerprint(1);
    let parallel = harness_fingerprint(4);
    assert_eq!(sequential, parallel);
}

#[test]
fn experiment_drivers_are_deterministic() {
    use fleet::experiment::{object_sizes, reaccess};
    let a = reaccess::fig6b(7, 6);
    let b = reaccess::fig6b(7, 6);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.depth, y.depth);
        assert_eq!(x.reaccess_coverage_pct, y.reaccess_coverage_pct);
        assert_eq!(x.mem_footprint_pct, y.mem_footprint_pct);
    }
    let a = object_sizes::fig7(3, 5_000);
    let b = object_sizes::fig7(3, 5_000);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cdf, y.cdf);
    }
}
