//! Determinism: identical seeds must produce bit-identical runs.
//!
//! Every stochastic decision flows through seeded RNG streams and every
//! container iterates in a deterministic order; these tests pin that down,
//! because the reproduction harness depends on it.

use fleet::{Device, DeviceConfig, SchemeKind};
use fleet_apps::{profile_by_name, synthetic_app};

/// A condensed fingerprint of a device run.
fn fingerprint(scheme: SchemeKind, seed: u64) -> String {
    let mut config = DeviceConfig::pixel3(scheme);
    config.seed = seed;
    let mut dev = Device::new(config);
    let (a, cold_a) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
    dev.run(8);
    let (b, _) = dev.launch_cold(&profile_by_name("Youtube").unwrap());
    dev.run(20);
    let hot_a = dev.switch_to(a);
    dev.run(8);
    let hot_b = dev.switch_to(b);
    dev.run(4);
    let mm = dev.mm();
    format!(
        "{:?}|{:?}|{:?}|faults={} swapped_out={} frames={} kills={} t={}",
        cold_a,
        hot_a,
        hot_b,
        mm.stats().faults,
        mm.stats().pages_swapped_out,
        mm.used_frames(),
        dev.kills().len(),
        dev.now(),
    )
}

#[test]
fn same_seed_is_bit_identical_for_every_scheme() {
    for scheme in SchemeKind::ALL {
        let a = fingerprint(scheme, 42);
        let b = fingerprint(scheme, 42);
        assert_eq!(a, b, "{scheme} must be deterministic");
    }
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(SchemeKind::Fleet, 1);
    let b = fingerprint(SchemeKind::Fleet, 2);
    assert_ne!(a, b, "seeds must matter (launch jitter, graph shapes)");
}

#[test]
fn capacity_run_is_deterministic() {
    let run = || {
        let mut dev = Device::new(DeviceConfig::pixel3(SchemeKind::Android));
        let app = synthetic_app(2048, 180);
        let mut curve = Vec::new();
        for _ in 0..14 {
            dev.launch_cold(&app);
            dev.run(6);
            curve.push(dev.cached_apps());
        }
        (curve, dev.kills().len(), dev.mm().swap().used_pages())
    };
    assert_eq!(run(), run());
}

/// Runs a cheap slice of the registry and fingerprints everything a user
/// can observe: the rendered text and the export JSON.
fn harness_fingerprint(threads: usize) -> String {
    use fleet::experiment::export::ExportRecord;
    use fleet::experiment::harness::{run_experiments, select};

    let selected =
        select(&["table1".into(), "table2".into(), "table3".into(), "fig4".into()]).unwrap();
    let reports = run_experiments(&selected, 0xF1EE7, true, threads, false);
    let mut fp = String::new();
    for report in reports {
        let output = report.result.expect("experiment runs");
        fp.push_str(report.id);
        fp.push_str(&output.render());
        for artifact in &output.exports {
            let record = ExportRecord::new(&artifact.id, &artifact.paper, &artifact.data);
            fp.push_str(&record.to_json().expect("export serialises"));
        }
    }
    fp
}

#[test]
fn parallel_and_sequential_harness_runs_are_bit_identical() {
    // The harness derives every experiment's seed from (master seed, id),
    // so rendered output and export JSON cannot depend on scheduling.
    let sequential = harness_fingerprint(1);
    let parallel = harness_fingerprint(4);
    assert_eq!(sequential, parallel);
}

#[test]
fn experiment_drivers_are_deterministic() {
    use fleet::experiment::{object_sizes, reaccess};
    let a = reaccess::fig6b(7, 6);
    let b = reaccess::fig6b(7, 6);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.depth, y.depth);
        assert_eq!(x.reaccess_coverage_pct, y.reaccess_coverage_pct);
        assert_eq!(x.mem_footprint_pct, y.mem_footprint_pct);
    }
    let a = object_sizes::fig7(3, 5_000);
    let b = object_sizes::fig7(3, 5_000);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cdf, y.cdf);
    }
}
