//! End-to-end smoke tests of the observability layer (`--features obs`).
//!
//! The contract under test, in order of importance:
//! * the launch span family reconciles — `cpu` + `fault_in` + `gc_pause`
//!   children tile the `launch_hot` root exactly (the `launch_attribution`
//!   experiment's decomposition is the same arithmetic),
//! * installing a pipeline observes without perturbing — simulation
//!   results are bit-identical with and without tracing,
//! * the exporters hold their schemas — the Chrome trace validates and
//!   `metrics.json` carries the expected metric families.
#![cfg(feature = "obs")]

use fleet::obs::{install, shared_pipeline, validate_chrome_trace, PlacedSpan};
use fleet::prelude::AppPool;
use fleet::SchemeKind;

fn pool_apps() -> Vec<String> {
    ["Twitter", "Youtube", "Chrome", "Spotify"].iter().map(|s| s.to_string()).collect()
}

/// Scans placed spans for each `launch_hot` root and returns
/// `(root_dur, child_dur_sum)` per launch. Children are the depth-1 spans
/// the tracer placed immediately after their root (one `feed_batch` per
/// launch keeps the family contiguous).
fn launch_families(spans: &[PlacedSpan]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < spans.len() {
        if spans[i].name == "launch_hot" {
            let mut sum = 0;
            let mut j = i + 1;
            while j < spans.len() && spans[j].depth > spans[i].depth {
                if spans[j].depth == spans[i].depth + 1 {
                    sum += spans[j].dur;
                }
                j += 1;
            }
            out.push((spans[i].dur, sum));
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

#[test]
fn launch_span_children_tile_the_root_exactly() {
    let pipeline = shared_pipeline();
    let reports = {
        let _guard = install(pipeline.clone());
        let mut pool = AppPool::under_pressure(SchemeKind::Fleet, &pool_apps(), 23).unwrap();
        pool.measure_hot_launches("Twitter", 3).unwrap()
    };
    assert_eq!(reports.len(), 3);
    let pipe = pipeline.lock().unwrap();
    let families = launch_families(pipe.spans());
    assert!(
        families.len() >= reports.len(),
        "every measured hot launch must leave a launch_hot span"
    );
    for (root, children) in &families {
        assert!(*root > 0, "a hot launch under pressure takes time");
        // The acceptance bar is 1%; the construction makes it exact.
        let err = root.abs_diff(*children) as f64 / *root as f64;
        assert!(err < 0.01, "children ({children} ns) must reconcile with the root ({root} ns)");
        assert_eq!(children, root, "the tiling is exact by construction");
    }
}

#[test]
fn installed_pipeline_does_not_perturb_the_simulation() {
    let baseline = {
        let mut pool = AppPool::under_pressure(SchemeKind::Fleet, &pool_apps(), 41).unwrap();
        pool.measure_hot_launches("Twitter", 3).unwrap()
    };
    let traced = {
        let pipeline = shared_pipeline();
        let _guard = install(pipeline);
        let mut pool = AppPool::under_pressure(SchemeKind::Fleet, &pool_apps(), 41).unwrap();
        pool.measure_hot_launches("Twitter", 3).unwrap()
    };
    assert_eq!(format!("{baseline:?}"), format!("{traced:?}"), "tracing must observe, never steer");
}

#[test]
fn exporters_hold_their_schemas() {
    let pipeline = shared_pipeline();
    {
        let _guard = install(pipeline.clone());
        let mut pool = AppPool::under_pressure(SchemeKind::Android, &pool_apps(), 7).unwrap();
        pool.measure_hot_launches("Chrome", 2).unwrap();
        pool.device_mut().run(10);
    }
    let pipe = pipeline.lock().unwrap();
    let summary = validate_chrome_trace(&pipe.trace_json()).expect("trace must validate");
    assert!(summary.spans > 0, "the protocol must leave spans");
    assert!(summary.tracks >= 2, "kernel track plus at least one app track");
    let metrics = pipe.metrics();
    assert!(metrics.counter("launch.hot") >= 2);
    assert!(metrics.counter("gc.collections") > 0, "pressure must trigger GCs");
    assert!(metrics.histogram("launch.total_ns").is_some(), "launch latency histogram must exist");
    assert!(
        metrics.histogram("kernel.fault_service_ns").is_some(),
        "fault-service latency histogram must exist"
    );
    assert!(
        metrics.series("mem.used_frames").is_some_and(|s| !s.is_empty()),
        "run() slices must sample the occupancy series"
    );
    let json = pipe.metrics_json();
    assert!(json.contains("\"schema_version\""));
    assert!(json.contains("launch.total_ns"));
}

#[test]
fn uninstalled_runs_record_nothing() {
    // No install: devices find no pipeline, logs stay disabled, and a
    // later reader sees an empty tracer — the default-off quiet gate.
    let mut pool = AppPool::under_pressure(SchemeKind::Fleet, &pool_apps(), 5).unwrap();
    pool.measure_hot_launches("Twitter", 1).unwrap();
    let pipeline = shared_pipeline();
    let pipe = pipeline.lock().unwrap();
    assert!(pipe.spans().is_empty());
    assert_eq!(pipe.metrics().counter("launch.hot"), 0);
}

#[test]
fn swam_daemon_emits_proactive_reclaim_spans() {
    // The proactive daemon's drains surface on the kernel track: one
    // `proactive_reclaim` root per firing tick, plus the matching pages
    // counter — and only when the policy is Swam (the goldens pin the
    // default-off silence).
    use fleet::{Device, DeviceConfig, KillPolicy, ReclaimPolicy, SwamParams};
    use fleet_apps::profile_by_name;
    let pipeline = shared_pipeline();
    let pages = {
        let _guard = install(pipeline.clone());
        let swam = ReclaimPolicy::Swam(SwamParams { idle_epochs: 1, ..SwamParams::default() });
        let config = DeviceConfig::builder(SchemeKind::Fleet)
            .seed(9)
            .reclaim_policy(swam)
            .kill_policy(KillPolicy::WssWeighted)
            .build()
            .unwrap();
        let mut dev = Device::new(config);
        for name in pool_apps() {
            dev.launch_cold(&profile_by_name(&name).unwrap());
            dev.run(10);
        }
        dev.run(120);
        dev.mm().stats().proactive_swapout_pages
    };
    assert!(pages > 0, "the single-epoch daemon must have drained an idle app");
    let pipe = pipeline.lock().unwrap();
    let drains: Vec<&PlacedSpan> =
        pipe.spans().iter().filter(|s| s.name == "proactive_reclaim").collect();
    assert!(!drains.is_empty(), "every firing tick must leave a span");
    let reclaimed: u64 = drains
        .iter()
        .map(|s| {
            assert_eq!(s.cat, "kernel");
            assert_eq!(s.depth, 0, "proactive_reclaim is a kernel-track root");
            s.args
                .iter()
                .find(|(k, _)| *k == "reclaimed")
                .map(|(_, v)| *v)
                .expect("span carries the reclaimed page count")
        })
        .sum();
    assert_eq!(reclaimed, pages, "span args must reconcile with the kernel counter");
    assert_eq!(pipe.metrics().counter("kernel.proactive_swapout_pages"), pages);
}
