//! Fleet-telemetry contracts (DESIGN.md §15): the cohort attribution/SLO
//! fold is thread-count-invariant down to exported JSON bytes, SLO windows
//! evaluate deterministically, and outlier drill-down replays each flagged
//! device-day to the bit-identical fingerprint the cohort recorded.

use fleet::population::{run_population, PopulationSpec, RangeU32};
use fleet::{drill_down, SchemeKind, SloSpec};
use proptest::prelude::*;
use std::path::PathBuf;

/// Serialises anything the export layer would write, for byte equality.
fn json_of<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("value serialises")
}

/// A deliberately tiny cohort spec (property cases simulate every
/// device-day several times) with a pair of armed SLO monitors: one that
/// cannot pass (0 ms hot-launch ceiling) and one that cannot fail.
fn tiny_spec(seed: u64, devices: u32, zram_chance: f64) -> PopulationSpec {
    let mut spec = PopulationSpec::default_mix(seed, devices);
    for class in &mut spec.classes {
        class.dram_mib = RangeU32 { lo: 2560, hi: 3072 };
        class.zram_chance = zram_chance;
    }
    for persona in &mut spec.personas {
        persona.working_set = RangeU32 { lo: 2, hi: 2 };
        persona.cycles = RangeU32 { lo: 1, hi: 2 };
        persona.usage_gap_secs = RangeU32 { lo: 5, hi: 8 };
    }
    spec.slos = vec![
        SloSpec::hot_launch_ms("impossible-p50-0ms", 5000, 0, 2),
        SloSpec::hot_launch_ms("generous-p99", 9900, 1 << 30, 2),
        SloSpec::lmk_kills_milli("generous-kills", u64::MAX / 2, 4),
    ];
    spec.validate().expect("tiny spec stays valid");
    spec
}

/// A scratch directory under the system temp dir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fleet_telemetry_{}_{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: with SLO monitors armed, a sequential and a
    /// 4-worker cohort run fold to byte-identical aggregates — telemetry
    /// histograms, slice rows, outlier pools, SLO verdicts and all — down
    /// to the exported JSON.
    #[test]
    fn telemetry_and_slo_folds_are_thread_count_invariant(
        seed in any::<u64>(),
        devices in 2u32..6,
        zram in prop_oneof![Just(0.0), Just(1.0)],
    ) {
        let spec = tiny_spec(seed, devices, zram);
        let sequential = run_population(&spec, 1).unwrap();
        let parallel = run_population(&spec, 4).unwrap();
        prop_assert_eq!(&sequential.aggregate, &parallel.aggregate);
        prop_assert_eq!(json_of(&sequential.aggregate), json_of(&parallel.aggregate));
        // The 0 ms ceiling breaches exactly the windows whose observed p50
        // strictly exceeds zero (a fully-resident hot launch can cost 0 µs,
        // and a 1-cycle day may record no hot launch at all — those windows
        // are skipped, never silently passed); the generous ones never
        // breach.
        let report = sequential.aggregate.slo_report();
        prop_assert_eq!(report.verdicts.len(), 3);
        let points = sequential.aggregate.telemetry.slo_points(&spec.slos[0]);
        let expected = points.iter().filter(|p| p.value_milli > 0).count();
        prop_assert_eq!(report.verdicts[0].windows as usize, points.len());
        prop_assert_eq!(report.verdicts[0].breaches.len(), expected);
        prop_assert_eq!(report.verdicts[0].pass, expected == 0);
        prop_assert!(report.verdicts[1].pass, "1<<30 ms ceiling must hold");
        prop_assert!(report.verdicts[2].pass, "huge kill budget must hold");
    }

    /// Drill-down replays every ranked outlier standalone to the exact
    /// fingerprint the cohort fold recorded for that device index.
    #[test]
    fn drilldown_replays_outliers_bit_identically(seed in any::<u64>()) {
        let spec = tiny_spec(seed, 4, 0.5);
        let run = run_population(&spec, 2).unwrap();
        let outliers = run.aggregate.telemetry.rank_outliers(3);
        prop_assert!(!outliers.is_empty(), "a nonempty cohort must rank outliers");
        let dir = scratch(&format!("prop_{seed:016x}"));
        let records = drill_down(&spec, &outliers, &dir).unwrap();
        prop_assert_eq!(records.len(), outliers.len());
        for record in &records {
            prop_assert!(
                record.matched,
                "outlier {} replayed to {:016x}, cohort saw {:016x}",
                record.index, record.replayed_fingerprint, record.cohort_fingerprint
            );
            for file in &record.files {
                prop_assert!(dir.join(file).is_file(), "missing artifact {file}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Telemetry rides the aggregate invisibly: armed monitors change verdicts
/// but not one byte of the simulation — the cohort hash and the telemetry
/// fold match a monitor-free run of the same spec.
#[test]
fn slo_monitors_never_perturb_the_cohort() {
    let armed = tiny_spec(0x7E1E, 5, 0.5);
    let mut plain = armed.clone();
    plain.slos.clear();
    let a = run_population(&armed, 2).unwrap().aggregate;
    let p = run_population(&plain, 2).unwrap().aggregate;
    assert_eq!(a.cohort_hash, p.cohort_hash);
    assert_eq!(a.telemetry, p.telemetry);
    assert_eq!(a.hot_launch_us, p.hot_launch_us);
    assert!(!a.slo_verdicts.is_empty());
    assert!(p.slo_verdicts.is_empty());
}

/// The attribution decomposition reconciles: per-scheme and per-class
/// launch counts each partition the cohort's hot launches, and every
/// span's components sum back to its total.
#[test]
fn attribution_partitions_hot_launches() {
    let spec = tiny_spec(0xA77B, 6, 0.5);
    let run = run_population(&spec, 3).unwrap();
    let tele = &run.aggregate.telemetry;
    assert_eq!(tele.overall.launches(), run.aggregate.hot_launches);
    let by_scheme: u64 = tele.schemes.iter().map(|a| a.launches()).sum();
    let by_class: u64 = tele.classes.iter().map(|c| c.attribution.launches()).sum();
    assert_eq!(by_scheme, run.aggregate.hot_launches);
    assert_eq!(by_class, run.aggregate.hot_launches);
    // cpu + fault_in + gc_pause sums back to total (decompress nests
    // inside fault_in), so the share percentages are a true decomposition.
    assert_eq!(
        tele.overall.total_us.sum(),
        tele.overall.cpu_us.sum() + tele.overall.fault_in_us.sum() + tele.overall.gc_pause_us.sum()
    );
    assert!(tele.overall.decompress_us.sum() <= tele.overall.fault_in_us.sum());
}

/// Drill-down is itself deterministic: two replays of the same outlier
/// list into fresh directories produce byte-identical row artifacts.
#[test]
fn drilldown_artifacts_are_reproducible() {
    let spec = tiny_spec(0xD811, 4, 1.0);
    let run = run_population(&spec, 2).unwrap();
    let outliers = run.aggregate.telemetry.rank_outliers(2);
    let dir_a = scratch("repro_a");
    let dir_b = scratch("repro_b");
    let rec_a = drill_down(&spec, &outliers, &dir_a).unwrap();
    let rec_b = drill_down(&spec, &outliers, &dir_b).unwrap();
    assert_eq!(json_of(&rec_a), json_of(&rec_b));
    for record in &rec_a {
        let name = format!("outlier_{}.row.json", record.index);
        let a = std::fs::read(dir_a.join(&name)).unwrap();
        let b = std::fs::read(dir_b.join(&name)).unwrap();
        assert_eq!(a, b, "{name} differs between replays");
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Enforced SLO specs surface through `enforce_failures` (the repro exit
/// path) while non-enforcing breaches stay report-only.
#[test]
fn enforcement_splits_breaches_from_failures() {
    let mut spec = tiny_spec(0xEF0, 3, 0.0);
    spec.slos = vec![
        SloSpec::hot_launch_ms("report-only-0ms", 5000, 0, 2),
        SloSpec::hot_launch_ms("enforced-0ms", 5000, 0, 2).enforced(),
        SloSpec::hot_launch_ms("enforced-passing", 9900, 1 << 30, 2).enforced(),
    ];
    let run = run_population(&spec, 1).unwrap();
    let report = run.aggregate.slo_report();
    assert!(report.breaches() >= 2);
    assert_eq!(report.enforce_failures(), vec!["enforced-0ms"]);
}

/// A degenerate single-scheme cohort still attributes every launch to
/// exactly that scheme's row.
#[test]
fn single_scheme_cohort_attributes_to_one_row() {
    let mut spec = tiny_spec(0x51, 3, 0.0);
    spec.schemes = vec![SchemeKind::Fleet];
    let run = run_population(&spec, 1).unwrap();
    let tele = &run.aggregate.telemetry;
    let fleet_idx =
        SchemeKind::ALL.iter().position(|&s| s == SchemeKind::Fleet).expect("Fleet in ALL");
    for (i, attribution) in tele.schemes.iter().enumerate() {
        if i == fleet_idx {
            assert_eq!(attribution.launches(), run.aggregate.hot_launches);
        } else {
            assert_eq!(attribution.launches(), 0);
        }
    }
}
