//! End-to-end integration tests: full device scenarios across every crate.

use fleet::{AppState, Device, DeviceConfig, LaunchKind, SchemeKind};
use fleet_apps::{catalog, profile_by_name, synthetic_app};
use fleet_gc::GcKind;
use fleet_heap::RegionKind;

fn device(scheme: SchemeKind) -> Device {
    Device::new(DeviceConfig::pixel3(scheme))
}

#[test]
fn fleet_full_pipeline_cold_to_hot() {
    let mut dev = device(SchemeKind::Fleet);
    let twitter = profile_by_name("Twitter").unwrap();
    let (pid, cold) = dev.launch_cold(&twitter);
    assert_eq!(cold.kind, LaunchKind::Cold);
    dev.run(10);

    // Background the app behind another one.
    dev.launch_cold(&profile_by_name("Telegram").unwrap());
    assert_eq!(dev.process(pid).state, AppState::Background);

    // Ts = 10 s later the grouping GC has run and cold pages are out.
    dev.run(15);
    let proc = dev.process(pid);
    let grouped = proc.fleet.grouped.as_ref().expect("grouping ran");
    assert!(grouped.launch_objects > 0);
    assert!(grouped.cold_objects > grouped.launch_objects, "most of the heap is cold");
    assert!(dev.mm().process_mem(pid).swapped > 0, "COLD_RUNTIME swapped the cold ranges");

    // The heap is now physically grouped: launch regions exist and every
    // classified object sits in a region matching its class.
    let heap = &dev.process(pid).heap;
    assert!(heap.regions().any(|r| r.kind() == RegionKind::Launch));
    assert!(heap.regions().any(|r| r.kind() == RegionKind::Cold));

    // BGC, not full GC, runs while cached.
    dev.run(90);
    let kinds: Vec<GcKind> = dev.process(pid).gcs.iter().map(|g| g.stats.kind).collect();
    assert!(kinds.contains(&GcKind::Grouping));
    assert!(kinds.contains(&GcKind::Bgc));
    assert!(!kinds.contains(&GcKind::Full), "Fleet must not full-GC a cached app: {kinds:?}");

    // Hot launch beats cold launch comfortably.
    let hot = dev.switch_to(pid);
    assert_eq!(hot.kind, LaunchKind::Hot);
    assert!(hot.total.as_millis_f64() * 2.0 < cold.total.as_millis_f64());
}

#[test]
fn android_background_gc_faults_swapped_pages() {
    // The §3.2 conflict end-to-end: swap an Android app's pages out, run its
    // background GC, observe GC-attributed faults.
    let mut dev = device(SchemeKind::Android);
    let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
    dev.run(5);
    dev.launch_cold(&profile_by_name("Telegram").unwrap());
    dev.run(5);
    // Force the app's anon pages out, then run its GC.
    let faults_before = dev.mm().stats().faults_gc;
    let swapped_before = dev.mm().process_mem(pid).swapped;
    assert_eq!(swapped_before, 0);
    // Manufacture pressure: many synthetic launches.
    for _ in 0..12 {
        dev.launch_cold(&synthetic_app(2048, 180));
        dev.run(3);
    }
    if dev.try_process(pid).is_err() {
        return; // LMK got it first; pressure was real. Nothing more to check.
    }
    let swapped = dev.mm().process_mem(pid).swapped;
    if swapped == 0 {
        return; // not enough pressure on this seed to swap the target
    }
    dev.run_gc(pid);
    let faults_after = dev.mm().stats().faults_gc;
    assert!(faults_after > faults_before, "a full GC over a swapped heap must fault pages back in");
}

#[test]
fn marvin_keeps_java_pages_out_of_kernel_lru() {
    let mut dev = device(SchemeKind::Marvin);
    let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
    dev.run(3);
    // Java heap pages are pinned.
    let heap_addr = {
        let proc = dev.process(pid);
        let obj = proc.heap.object_ids().next().expect("objects exist");
        proc.heap.address(obj)
    };
    assert!(dev.mm().is_pinned(pid, heap_addr), "Marvin pins the Java heap");
}

#[test]
fn lmk_kills_free_all_memory() {
    let mut dev = device(SchemeKind::AndroidNoSwap);
    let app = synthetic_app(2048, 180);
    for _ in 0..16 {
        dev.launch_cold(&app);
        dev.run(3);
    }
    assert!(!dev.kills().is_empty());
    // Page accounting: every mapped page belongs to a live process or the
    // page cache; total resident never exceeds capacity.
    assert!(dev.mm().used_frames() <= dev.mm().frames_capacity());
    // Swap is disabled: no pages can be in swap.
    assert_eq!(dev.mm().swap().used_pages(), 0);
}

#[test]
fn all_catalog_apps_survive_a_basic_cycle() {
    // Smoke: every Table 3 profile can cold-launch, background, and hot-launch.
    let mut dev = device(SchemeKind::Fleet);
    let mut pids = Vec::new();
    for profile in catalog().into_iter().take(6) {
        let (pid, _) = dev.launch_cold(&profile);
        pids.push(pid);
        dev.run(3);
    }
    dev.run(15);
    for pid in pids {
        if dev.try_process(pid).is_ok() {
            let report = dev.switch_to(pid);
            assert!(report.total.as_millis_f64() > 0.0);
            dev.run(2);
        }
    }
}

#[test]
fn schemes_disagree_only_in_policy_not_in_correctness() {
    // Same workload under every scheme: apps launch, run, and hot-launch
    // without panics, and heap liveness stays consistent.
    for scheme in SchemeKind::ALL {
        let mut dev = device(scheme);
        let (a, _) = dev.launch_cold(&profile_by_name("Spotify").unwrap());
        dev.run(5);
        let (b, _) = dev.launch_cold(&profile_by_name("LinkedIn").unwrap());
        dev.run(20);
        for pid in [a, b] {
            if dev.try_process(pid).is_ok() {
                dev.switch_to(pid);
                dev.run(5);
                let proc = dev.process(pid);
                assert!(proc.heap.live_bytes() > 0);
                assert!(proc.heap.live_bytes() <= proc.heap.used_bytes());
            }
        }
    }
}
