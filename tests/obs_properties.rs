//! Property tests over span placement (`--features obs`).
//!
//! Random launch/switch/kill/run scripts drive a traced device; whatever
//! the script does, the placed spans must keep the tracer's structural
//! invariants — proper nesting, sibling non-overlap, monotone roots — and
//! the exported Chrome trace must pass the schema validator. A second run
//! of the same script must place the identical spans.
#![cfg(feature = "obs")]

use fleet::obs::{install, shared_pipeline, validate_chrome_trace, PlacedSpan};
use fleet::{Device, DeviceConfig, SchemeKind};
use fleet_apps::profile_by_name;
use proptest::prelude::*;

const APPS: [&str; 4] = ["Twitter", "Youtube", "Chrome", "Telegram"];

/// One scripted action against the device.
#[derive(Debug, Clone, Copy)]
enum Action {
    Launch(u8),
    Switch(u8),
    Kill(u8),
    Run(u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..4).prop_map(Action::Launch),
        (0u8..8).prop_map(Action::Switch),
        (0u8..8).prop_map(Action::Kill),
        (1u8..5).prop_map(Action::Run),
    ]
}

/// Runs a script under an installed pipeline and returns the placed spans.
fn run_script(scheme: SchemeKind, seed: u64, script: &[Action]) -> Vec<PlacedSpan> {
    let pipeline = shared_pipeline();
    {
        let _guard = install(pipeline.clone());
        let mut config = DeviceConfig::pixel3(scheme);
        config.seed = seed;
        let mut dev = Device::new(config);
        for &action in script {
            match action {
                Action::Launch(i) => {
                    let app = profile_by_name(APPS[i as usize % APPS.len()]).unwrap();
                    dev.launch_cold(&app);
                }
                Action::Switch(i) => {
                    let alive = dev.alive();
                    if !alive.is_empty() {
                        let pid = alive[i as usize % alive.len()];
                        if dev.foreground() != Some(pid) {
                            dev.switch_to(pid);
                        }
                    }
                }
                Action::Kill(i) => {
                    let alive = dev.alive();
                    if !alive.is_empty() {
                        dev.kill(alive[i as usize % alive.len()]);
                    }
                }
                Action::Run(secs) => dev.run(secs as u64),
            }
        }
    }
    let pipe = pipeline.lock().unwrap();
    let trace = pipe.trace_json();
    validate_chrome_trace(&trace).expect("exported trace must pass the schema validator");
    pipe.spans().to_vec()
}

/// Structural invariants over placed spans, checked directly (the JSON
/// validator re-checks them after the microsecond round-trip).
fn check_nesting(spans: &[PlacedSpan]) {
    use std::collections::BTreeMap;
    let mut by_track: BTreeMap<u64, Vec<&PlacedSpan>> = BTreeMap::new();
    for s in spans {
        by_track.entry(s.track).or_default().push(s);
    }
    for (track, spans) in by_track {
        // Replay placement order with an enclosing-span stack.
        let mut stack: Vec<&PlacedSpan> = Vec::new();
        for s in spans {
            while let Some(top) = stack.last() {
                if s.start >= top.end() {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                assert!(
                    s.start >= top.start && s.end() <= top.end(),
                    "track {track}: span {} [{}, {}) escapes its parent {} [{}, {})",
                    s.name,
                    s.start,
                    s.end(),
                    top.name,
                    top.start,
                    top.end()
                );
            }
            stack.push(s);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_scripts_place_nested_deterministic_spans(
        seed in 1u64..500,
        script in proptest::collection::vec(action_strategy(), 5..25),
    ) {
        let spans = run_script(SchemeKind::Fleet, seed, &script);
        check_nesting(&spans);
        // Same script, fresh pipeline: identical placement.
        let again = run_script(SchemeKind::Fleet, seed, &script);
        prop_assert_eq!(spans, again);
    }

    #[test]
    fn all_schemes_trace_cleanly(
        seed in 1u64..100,
        script in proptest::collection::vec(action_strategy(), 5..15),
    ) {
        for scheme in [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet] {
            let spans = run_script(scheme, seed, &script);
            check_nesting(&spans);
        }
    }
}
