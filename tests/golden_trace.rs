//! Golden-trace regression suite.
//!
//! Three fast registry experiments run with the flight recorder attached;
//! the canonical event-stream fingerprint (event count, FNV-1a hash,
//! checkpoints, and the verbatim head of the stream) is committed under
//! `tests/golden/traces.txt`. Any behavioural drift in the kernel, heap,
//! GC or device layers changes the stream and fails this suite with a
//! structured diff of the first diverging event.
//!
//! Intentional changes are re-blessed with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --features audit --test golden_trace
//! ```
#![cfg(feature = "audit")]

use fleet::audit::{install, shared_pipeline};
use fleet::experiment::harness::{derive_seed, ExperimentCtx, REGISTRY};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Master seed for the whole suite; per-experiment seeds derive from it.
const MASTER_SEED: u64 = 0xF1EE7;

/// The pinned experiments: each drives full `Device` stacks through the
/// kernel, heap and GC layers, and finishes in seconds under `quick`.
const GOLDEN_IDS: [&str; 3] = ["fig2", "fig5", "fig11"];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/traces.txt")
}

/// One experiment's recorded fingerprint.
struct Trace {
    id: &'static str,
    seed: u64,
    events: u64,
    hash: u64,
    checkpoints: Vec<(u64, u64)>,
    head: Vec<String>,
}

/// Runs `id` from the registry in quick mode with a fresh pipeline
/// installed and captures the recorder state.
fn record(id: &'static str) -> Trace {
    let exp = REGISTRY.iter().find(|e| e.id() == id).expect("golden id must be in REGISTRY");
    let seed = derive_seed(MASTER_SEED, id);
    let ctx = ExperimentCtx { seed, quick: true, drilldown: None };
    let pipeline = shared_pipeline();
    let _guard = install(pipeline.clone());
    exp.run(&ctx).expect("golden experiment must run");
    let pipe = pipeline.lock().unwrap();
    assert_eq!(pipe.auditor().violations(), 0, "{id}: auditor must stay clean");
    let rec = pipe.recorder();
    Trace {
        id,
        seed,
        events: rec.event_count(),
        hash: rec.hash(),
        checkpoints: rec.checkpoints().to_vec(),
        head: rec.head().to_vec(),
    }
}

/// Canonical text form of the golden file.
fn render(traces: &[Trace]) -> String {
    let mut out = String::new();
    out.push_str("# Golden flight-recorder traces. Any drift means observable behaviour\n");
    out.push_str("# changed somewhere in kernel/heap/gc/device; re-bless intentional\n");
    out.push_str(
        "# changes with: GOLDEN_BLESS=1 cargo test --features audit --test golden_trace\n",
    );
    let _ = writeln!(out, "# master_seed={MASTER_SEED:#x}");
    for t in traces {
        out.push('\n');
        let _ = writeln!(
            out,
            "experiment={} seed={} quick=true events={} hash={:016x}",
            t.id, t.seed, t.events, t.hash
        );
        for (count, hash) in &t.checkpoints {
            let _ = writeln!(out, "checkpoint {count} {hash:016x}");
        }
        for (i, line) in t.head.iter().enumerate() {
            let _ = writeln!(out, "head {} {}", i + 1, line);
        }
    }
    out
}

/// A parsed golden-file section.
struct Section {
    summary: String,
    checkpoints: Vec<String>,
    head: Vec<String>,
}

fn parse(text: &str) -> Vec<(String, Section)> {
    let mut out: Vec<(String, Section)> = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("experiment=") {
            let id = rest.split_whitespace().next().unwrap_or("").to_string();
            out.push((
                id,
                Section { summary: line.to_string(), checkpoints: Vec::new(), head: Vec::new() },
            ));
        } else if let Some((_, section)) = out.last_mut() {
            if line.starts_with("checkpoint ") {
                section.checkpoints.push(line.to_string());
            } else if let Some(rest) = line.strip_prefix("head ") {
                // "head <n> <event>" — keep only the event.
                let event = rest.split_once(' ').map(|(_, e)| e).unwrap_or("");
                section.head.push(event.to_string());
            }
        }
    }
    out
}

/// Localizes the drift for one experiment: the exact first diverging head
/// event when it happens early, else the first diverging checkpoint block.
fn explain_drift(golden: &Section, fresh: &Trace) -> String {
    let mut msg = String::new();
    let fresh_summary = format!(
        "experiment={} seed={} quick=true events={} hash={:016x}",
        fresh.id, fresh.seed, fresh.events, fresh.hash
    );
    let _ = writeln!(msg, "  golden: {}", golden.summary);
    let _ = writeln!(msg, "  fresh:  {fresh_summary}");
    for (i, (g, f)) in golden.head.iter().zip(&fresh.head).enumerate() {
        if g != f {
            let _ = writeln!(msg, "  first diverging event is head #{}:", i + 1);
            let _ = writeln!(msg, "    golden: {g}");
            let _ = writeln!(msg, "    fresh:  {f}");
            return msg;
        }
    }
    if golden.head.len() != fresh.head.len() {
        let _ = writeln!(
            msg,
            "  head streams agree but lengths differ: golden {} vs fresh {} events",
            golden.head.len(),
            fresh.head.len()
        );
        return msg;
    }
    let fresh_cps: Vec<String> = fresh
        .checkpoints
        .iter()
        .map(|(count, hash)| format!("checkpoint {count} {hash:016x}"))
        .collect();
    for (i, g) in golden.checkpoints.iter().enumerate() {
        match fresh_cps.get(i) {
            Some(f) if f == g => continue,
            Some(f) => {
                let _ = writeln!(msg, "  first diverging checkpoint:");
                let _ = writeln!(msg, "    golden: {g}");
                let _ = writeln!(msg, "    fresh:  {f}");
                return msg;
            }
            None => {
                let _ = writeln!(msg, "  fresh stream ends before golden {g}");
                return msg;
            }
        }
    }
    let _ = writeln!(msg, "  streams diverge after the recorded head/checkpoint window");
    msg
}

#[test]
fn golden_traces_match() {
    let path = golden_path();
    let traces: Vec<Trace> = GOLDEN_IDS.map(record).into_iter().collect();
    let rendered = render(&traces);

    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, &rendered).expect("write golden file");
        eprintln!("blessed {} ({} experiments)", path.display(), traces.len());
        return;
    }

    let golden_text = fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden file {} ({err}); generate it with \
             GOLDEN_BLESS=1 cargo test --features audit --test golden_trace",
            path.display()
        )
    });
    if golden_text == rendered {
        return;
    }

    let golden = parse(&golden_text);
    let mut msg = String::from(
        "golden trace drift — observable behaviour changed; if intentional, \
         re-bless with GOLDEN_BLESS=1 and justify in the commit message\n",
    );
    for trace in &traces {
        match golden.iter().find(|(id, _)| id == trace.id) {
            Some((_, section)) => {
                let fresh_summary = format!(
                    "experiment={} seed={} quick=true events={} hash={:016x}",
                    trace.id, trace.seed, trace.events, trace.hash
                );
                if section.summary != fresh_summary || section.head.iter().ne(trace.head.iter()) {
                    let _ = writeln!(msg, "{}:", trace.id);
                    msg.push_str(&explain_drift(section, trace));
                }
            }
            None => {
                let _ = writeln!(msg, "{}: not present in golden file", trace.id);
            }
        }
    }
    panic!("{msg}");
}

/// The recorder fingerprint of a golden experiment is bit-stable across
/// repeated in-process runs — the property the golden file relies on.
#[test]
fn golden_recording_is_deterministic() {
    let a = record("fig5");
    let b = record("fig5");
    assert_eq!(a.events, b.events);
    assert_eq!(a.hash, b.hash);
    assert_eq!(a.head, b.head);
}
