//! Memory-accounting invariants across the whole stack.
//!
//! Whatever the schemes do — copying GCs, object swaps, madvise, LMK kills —
//! pages and frames must always add up.

use fleet::{Device, DeviceConfig, SchemeKind};
use fleet_apps::{profile_by_name, synthetic_app};
use fleet_heap::PAGE_SIZE;

fn check_invariants(dev: &Device) {
    let mm = dev.mm();
    // The kernel's own structural self-check: exact residency counts, swap
    // slot conservation and LRU membership (panics with the discrepancy).
    mm.validate();
    // Frames can never be overcommitted.
    assert!(mm.used_frames() <= mm.frames_capacity());
    // Swap can never be overcommitted.
    assert!(mm.swap().used_pages() <= mm.swap().capacity_pages());
    // Per-process residency sums are consistent with the page tables.
    for proc in dev.processes() {
        let mem = mm.process_mem(proc.pid);
        let heap_pages: u64 = proc.heap.regions().map(|r| r.size() as u64 / PAGE_SIZE).sum();
        let native_pages = proc.native_len.div_ceil(PAGE_SIZE);
        let file_pages = proc.file_len.div_ceil(PAGE_SIZE);
        assert!(
            mem.resident + mem.swapped <= heap_pages + native_pages + file_pages,
            "{}: resident {} + swapped {} exceeds mapped {}",
            proc.name,
            mem.resident,
            mem.swapped,
            heap_pages + native_pages + file_pages
        );
        // Heap-side accounting.
        assert!(proc.heap.live_bytes() <= proc.heap.used_bytes());
    }
}

#[test]
fn invariants_hold_through_a_stormy_run() {
    for scheme in SchemeKind::ALL {
        // With `--features audit` the run additionally streams every state
        // transition through the online invariant auditor, which panics on
        // the first violation with the flight-recorder ring as context.
        #[cfg(feature = "audit")]
        let _guard = fleet::audit::install(fleet::audit::shared_pipeline());
        let mut dev = Device::new(DeviceConfig::pixel3(scheme));
        let apps = [
            profile_by_name("Twitter").unwrap(),
            profile_by_name("Youtube").unwrap(),
            profile_by_name("Chrome").unwrap(),
        ];
        for _ in 0..2 {
            for app in &apps {
                dev.launch_cold(app);
                dev.run(7);
                check_invariants(&dev);
            }
        }
        // Pressure phase: pile on synthetic apps until kills happen.
        for _ in 0..10 {
            dev.launch_cold(&synthetic_app(2048, 180));
            dev.run(4);
            check_invariants(&dev);
        }
        // Hot-launch whatever survived.
        for pid in dev.alive() {
            if dev.try_process(pid).is_ok() && dev.foreground() != Some(pid) {
                dev.switch_to(pid);
                dev.run(2);
                check_invariants(&dev);
            }
        }
    }
}

#[test]
fn killing_everything_returns_all_memory() {
    #[cfg(feature = "audit")]
    let _guard = fleet::audit::install(fleet::audit::shared_pipeline());
    let mut dev = Device::new(DeviceConfig::pixel3(SchemeKind::Fleet));
    for _ in 0..6 {
        dev.launch_cold(&synthetic_app(2048, 180));
        dev.run(12);
    }
    let pids = dev.alive();
    for pid in pids {
        dev.kill(pid);
    }
    assert_eq!(dev.cached_apps(), 0);
    // Only the shared page cache may remain resident.
    let cache_pages = 64 * 1024 * 1024 / PAGE_SIZE; // PAGECACHE_WINDOW bound
    assert!(
        dev.mm().used_frames() <= cache_pages,
        "only page-cache pages may remain: {}",
        dev.mm().used_frames()
    );
    assert_eq!(dev.mm().swap().used_pages(), 0, "kills must release swap slots");
}

#[test]
fn gc_epochs_and_heap_limits_progress() {
    let mut dev = Device::new(DeviceConfig::pixel3(SchemeKind::Android));
    let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
    dev.run(5);
    dev.launch_cold(&profile_by_name("Telegram").unwrap());
    dev.run(120); // a couple of background maintenance GCs
    let proc = dev.process(pid);
    assert!(proc.heap.gc_epoch() >= 1);
    assert!(proc.heap.limit() >= proc.heap.live_bytes(), "limit below live would GC-storm");
    assert!(!proc.gcs.is_empty());
    for record in &proc.gcs {
        assert!(record.stats.duration() > fleet_sim::SimDuration::ZERO);
    }
}
