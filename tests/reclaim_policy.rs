//! `ReclaimPolicy` API: Reactive invisibility and Swam audit discipline.
//!
//! The reclaim redesign routes kswapd, zram writeback, proactive swap-out
//! and lmkd escalation through one `ReclaimDriver`, so two properties keep
//! the golden-trace gate honest:
//!
//! * **Invisibility** — a device built with the default config and one
//!   built with an explicit `ReclaimPolicy::Reactive` +
//!   `KillPolicy::ColdestFirst` must be bit-identical under arbitrary
//!   scripts and fault plans (the committed goldens pin the same streams
//!   against the pre-redesign behaviour).
//! * **Discipline** — `ReclaimPolicy::Swam` must uphold all seven auditor
//!   invariant families, quiet and armed, and its event streams must hash
//!   deterministically.

use fleet::{Device, DeviceConfig, KillPolicy, ReclaimPolicy, SchemeKind};
use fleet_apps::profile_by_name;
use fleet_kernel::FaultConfig;

const APPS: [&str; 4] = ["Twitter", "Youtube", "Chrome", "Telegram"];

/// splitmix64 — the scenario script generator, independent from the
/// device's own seeded RNG streams (same construction as `audit_smoke`).
struct Script(u64);

impl Script {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Drives 30 random ops (launch / switch / kill / run) and condenses every
/// externally observable counter into a comparison fingerprint.
fn drive_and_fingerprint(dev: &mut Device, script_seed: u64) -> String {
    let mut script = Script(script_seed);
    for _ in 0..30 {
        match script.below(10) {
            0..=3 => {
                let app = profile_by_name(APPS[script.below(APPS.len() as u64) as usize]).unwrap();
                dev.launch_cold(&app);
            }
            4..=6 => {
                let alive = dev.alive();
                if !alive.is_empty() {
                    let pid = alive[script.below(alive.len() as u64) as usize];
                    if dev.foreground() != Some(pid) {
                        // A SIGBUS mid-launch is a legal degraded outcome
                        // under an armed plan.
                        let _ = dev.try_switch_to(pid);
                    }
                }
            }
            7 => {
                let alive = dev.alive();
                if !alive.is_empty() {
                    dev.kill(alive[script.below(alive.len() as u64) as usize]);
                }
            }
            _ => dev.run(1 + script.below(5)),
        }
    }
    let stats = dev.mm().stats();
    format!(
        "faults={} retries={} out={} proactive={} zram_wb={} lost={} \
         frames={} swap={} sigbus={} lmk={} esc={} kills={} t={}",
        stats.faults,
        stats.fault_retries,
        stats.pages_swapped_out,
        stats.proactive_swapout_pages,
        stats.zram_writeback_pages,
        stats.pages_lost,
        dev.mm().used_frames(),
        dev.mm().swap().used_pages(),
        dev.sigbus_kills(),
        dev.reclaim().total_kills(),
        dev.reclaim().escalations(),
        dev.kills().len(),
        dev.now(),
    )
}

/// Builds a device for `scheme`, optionally with an armed fault plan and
/// optionally spelling out the legacy policy pair explicitly.
fn build_device(scheme: SchemeKind, seed: u64, fault: Option<f64>, explicit: bool) -> Device {
    let mut b = DeviceConfig::builder(scheme).seed(seed);
    if let Some(intensity) = fault {
        b = b.fault(FaultConfig::flaky_flash(intensity));
    }
    if explicit {
        b = b.reclaim_policy(ReclaimPolicy::Reactive).kill_policy(KillPolicy::ColdestFirst);
    }
    Device::try_new(b.build().unwrap()).unwrap()
}

mod invisibility {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Spelling out the default policies must not change one observable
        /// byte — under random scripts, any scheme, and random (possibly
        /// armed) fault plans.
        #[test]
        fn explicit_reactive_is_bit_identical_to_default(
            seed in 1u64..1_000_000,
            scheme_idx in 0usize..SchemeKind::ALL.len(),
            armed in any::<bool>(),
            intensity in 0.01f64..0.25,
        ) {
            let scheme = SchemeKind::ALL[scheme_idx];
            let fault = armed.then_some(intensity);
            let mut default_dev = build_device(scheme, seed, fault, false);
            let mut explicit_dev = build_device(scheme, seed, fault, true);
            let a = drive_and_fingerprint(&mut default_dev, seed ^ 0x5CA1E);
            let b = drive_and_fingerprint(&mut explicit_dev, seed ^ 0x5CA1E);
            prop_assert_eq!(a, b, "{:?} seed {}: explicit Reactive diverged", scheme, seed);
        }

        /// Reactive never runs the proactive daemon or the WSS tracker, no
        /// matter the script: the counters that only Swam may move stay 0.
        #[test]
        fn reactive_never_moves_swam_counters(
            seed in 1u64..1_000_000,
            scheme_idx in 0usize..SchemeKind::ALL.len(),
        ) {
            let scheme = SchemeKind::ALL[scheme_idx];
            let mut dev = build_device(scheme, seed, None, true);
            drive_and_fingerprint(&mut dev, seed);
            prop_assert_eq!(dev.mm().stats().proactive_swapout_pages, 0);
            prop_assert_eq!(dev.mm().stats().wss_epochs, 0);
            prop_assert!(!dev.mm().wss_tracking_enabled());
            prop_assert_eq!(dev.reclaim().proactive_pages(), 0);
        }
    }
}

/// The Swam policy under the installed audit pipeline: every cross-layer
/// transition streams through the shadow-state auditor (seven invariant
/// families), quiet and armed, and must stay violation-free.
#[cfg(feature = "audit")]
mod swam_audit {
    use super::*;
    use fleet::audit::{install, shared_pipeline};
    use fleet::SwamParams;

    /// One Swam scenario under the auditor; returns `(events, hash)`.
    fn swam_scenario(scheme: SchemeKind, seed: u64, fault: Option<f64>) -> (u64, u64) {
        let pipeline = shared_pipeline();
        let _guard = install(pipeline.clone());
        // An aggressive parameterisation (single idle epoch) so the
        // proactive daemon actually fires within a 30-op script.
        let swam = ReclaimPolicy::Swam(SwamParams { idle_epochs: 1, ..SwamParams::default() });
        let mut b = DeviceConfig::builder(scheme)
            .seed(seed)
            .reclaim_policy(swam)
            .kill_policy(KillPolicy::WssWeighted);
        if let Some(intensity) = fault {
            b = b.fault(FaultConfig::flaky_flash(intensity));
        }
        let mut dev = Device::try_new(b.build().unwrap()).unwrap();
        drive_and_fingerprint(&mut dev, seed ^ 0x5A7A);
        drop(dev);
        let pipe = pipeline.lock().unwrap();
        assert_eq!(pipe.auditor().violations(), 0, "{scheme}: Swam must audit clean");
        assert!(pipe.recorder().event_count() > 0, "scenario must record events");
        (pipe.recorder().event_count(), pipe.recorder().hash())
    }

    #[test]
    fn swam_audits_clean_quiet_and_armed_for_every_scheme() {
        for scheme in SchemeKind::ALL {
            let quiet_a = swam_scenario(scheme, 17, None);
            let quiet_b = swam_scenario(scheme, 17, None);
            assert_eq!(quiet_a, quiet_b, "{scheme}: quiet Swam stream must be deterministic");
            let armed_a = swam_scenario(scheme, 17, Some(0.05));
            let armed_b = swam_scenario(scheme, 17, Some(0.05));
            assert_eq!(armed_a, armed_b, "{scheme}: armed Swam stream must be deterministic");
        }
    }

    #[test]
    fn swam_proactive_daemon_fires_and_audits_clean() {
        // A background-heavy script on the paper's scheme: several apps
        // cached behind the foreground with long run stretches, so the
        // idle clocks cross the (single-epoch) threshold and the daemon
        // issues `ProactiveSwapOut` events the seventh family checks.
        let pipeline = shared_pipeline();
        let _guard = install(pipeline.clone());
        let swam = ReclaimPolicy::Swam(SwamParams { idle_epochs: 1, ..SwamParams::default() });
        let config = DeviceConfig::builder(SchemeKind::Fleet)
            .seed(9)
            .reclaim_policy(swam)
            .kill_policy(KillPolicy::WssWeighted)
            .build()
            .unwrap();
        let mut dev = Device::new(config);
        for name in APPS {
            dev.launch_cold(&profile_by_name(name).unwrap());
            dev.run(10);
        }
        dev.run(120);
        let pages = dev.mm().stats().proactive_swapout_pages;
        assert!(pages > 0, "daemon must have drained an idle app");
        assert_eq!(dev.reclaim().proactive_pages(), pages);
        drop(dev);
        let pipe = pipeline.lock().unwrap();
        assert_eq!(pipe.auditor().violations(), 0, "proactive stream must audit clean");
    }

    /// The audit streams themselves (not just the kernel counters) are
    /// identical between a default device and an explicit-Reactive one.
    #[test]
    fn default_and_explicit_reactive_audit_streams_match() {
        let stream = |explicit: bool| {
            let pipeline = shared_pipeline();
            let _guard = install(pipeline.clone());
            let mut dev = build_device(SchemeKind::Fleet, 23, None, explicit);
            drive_and_fingerprint(&mut dev, 23);
            drop(dev);
            let pipe = pipeline.lock().unwrap();
            assert_eq!(pipe.auditor().violations(), 0);
            (pipe.recorder().event_count(), pipe.recorder().hash())
        };
        assert_eq!(stream(false), stream(true), "Reactive audit stream diverged from default");
    }
}
