//! Audited population smoke: a small flash-only cohort under the flight
//! recorder, with its event-stream hash pinned in
//! `tests/golden/population.txt` (alongside, not inside,
//! `tests/golden/traces.txt` — the existing golden traces are untouched).
//!
//! The cohort runs sequentially (`threads = 1`): installed audit pipelines
//! are thread-local, so the inline path is the one that lets the auditor
//! observe every device of the cohort. All six invariant families are
//! enforced online per device; the recorder's `(event count, hash)` pins
//! the whole cohort's behaviour.
//!
//! Intentional changes are re-blessed with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --features audit --test population_audit
//! ```
#![cfg(feature = "audit")]

use fleet::audit::{install, shared_pipeline};
use fleet::population::{run_population, PopulationSpec, RangeU32};
use fleet_kernel::{FaultConfig, IntegrityConfig};
use std::fs;
use std::path::PathBuf;

/// Cohort seed; device seeds split from it.
const COHORT_SEED: u64 = 0xF1EE7;

/// Small enough to finish in seconds, big enough to cross a class, a
/// persona and a scheme boundary.
const COHORT_DEVICES: u32 = 6;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/population.txt")
}

/// The audited cohort: flash-only (zram adoption zeroed — hybrid stacks
/// emit extra tier events; the pinned stream stays on the paper's default
/// swap path), short days.
fn audited_spec() -> PopulationSpec {
    let mut spec = PopulationSpec::default_mix(COHORT_SEED, COHORT_DEVICES);
    for class in &mut spec.classes {
        class.zram_chance = 0.0;
    }
    for persona in &mut spec.personas {
        persona.working_set = RangeU32 { lo: 2, hi: 3 };
        persona.cycles = RangeU32 { lo: 1, hi: 2 };
        persona.usage_gap_secs = RangeU32 { lo: 5, hi: 10 };
    }
    spec
}

/// Runs the cohort inline under a fresh audit pipeline; returns the
/// recorder fingerprint after asserting the auditor stayed clean.
fn record_cohort() -> (u64, u64) {
    let spec = audited_spec();
    let pipeline = shared_pipeline();
    let _guard = install(pipeline.clone());
    let run = run_population(&spec, 1).expect("audited cohort runs");
    assert_eq!(run.aggregate.devices, COHORT_DEVICES as u64);
    assert_eq!(run.aggregate.zram_devices, 0, "flash-only cohort sampled a zram device");
    let pipe = pipeline.lock().unwrap();
    assert_eq!(
        pipe.auditor().violations(),
        0,
        "auditor must stay clean across every device of the cohort"
    );
    let rec = pipe.recorder();
    assert!(rec.event_count() > 0, "cohort devices must stream events into the recorder");
    (rec.event_count(), rec.hash())
}

fn render(events: u64, hash: u64) -> String {
    format!(
        "# Golden audited population cohort (flash-only, sequential). Drift means\n\
         # observable cohort behaviour changed; re-bless intentional changes with:\n\
         # GOLDEN_BLESS=1 cargo test --features audit --test population_audit\n\
         cohort seed={COHORT_SEED:#x} devices={COHORT_DEVICES} events={events} hash={hash:016x}\n"
    )
}

#[test]
fn audited_cohort_matches_golden_hash() {
    let (events, hash) = record_cohort();
    let rendered = render(events, hash);
    let path = golden_path();

    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, &rendered).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden = fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden file {} ({err}); generate it with \
             GOLDEN_BLESS=1 cargo test --features audit --test population_audit",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "audited population cohort drifted; if intentional, re-bless with GOLDEN_BLESS=1"
    );
}

/// The pinned fingerprint is bit-stable across in-process repeats — the
/// property the golden file relies on.
#[test]
fn audited_cohort_recording_is_deterministic() {
    let a = record_cohort();
    let b = record_cohort();
    assert_eq!(a, b);
}

/// Armed fault plans at population scale: the same cohort with silent
/// corruption + torn writeback injected and the integrity layer armed must
/// keep every auditor family clean (including the eighth, data integrity)
/// on every device, and two runs must land on the same recorder hash —
/// chaos is seeded, not random.
#[test]
fn armed_fault_plans_stay_clean_and_deterministic_at_cohort_scale() {
    let mut spec = audited_spec();
    // Hybrid stacks everywhere so both the zram and flash corruption paths
    // (store corruption, torn writeback) are exercised.
    for class in &mut spec.classes {
        class.zram_chance = 1.0;
    }
    spec.fault = FaultConfig::silent_corruption(0.2);
    spec.integrity = IntegrityConfig {
        quarantine_threshold: 2,
        scrub_interval_ticks: 1,
        ..IntegrityConfig::checked()
    };

    let mut fingerprints = Vec::new();
    let mut detected = 0;
    for _ in 0..2 {
        let pipeline = shared_pipeline();
        let _guard = install(pipeline.clone());
        let run = run_population(&spec, 1).expect("armed cohort runs");
        assert_eq!(run.aggregate.devices, COHORT_DEVICES as u64);
        let pipe = pipeline.lock().unwrap();
        assert_eq!(
            pipe.auditor().violations(),
            0,
            "auditor must stay clean under armed corruption plans"
        );
        let rec = pipe.recorder();
        fingerprints.push((rec.event_count(), rec.hash()));
        detected = run.aggregate.corruptions_detected;
        assert!(
            run.aggregate.corruptions_detected <= run.aggregate.corruptions_injected,
            "detection can never outrun injection"
        );
    }
    assert_eq!(fingerprints[0], fingerprints[1], "armed cohort not deterministic across runs");
    assert!(detected > 0, "an intensity-0.2 cohort must actually inject corruption");
}

/// The audited inline run aggregates to the same bytes as an unaudited
/// parallel run: recording must not perturb the simulation.
#[test]
fn audit_does_not_perturb_the_cohort() {
    let spec = audited_spec();
    let audited = {
        let pipeline = shared_pipeline();
        let _guard = install(pipeline);
        run_population(&spec, 1).expect("audited cohort runs")
    };
    let plain = run_population(&spec, 2).expect("plain cohort runs");
    assert_eq!(audited.aggregate, plain.aggregate);
    // The invariants must have run against heterogeneous stacks, not six
    // copies of one scheme.
    let covered = audited.aggregate.scheme_devices.iter().filter(|&&n| n > 0).count();
    assert!(covered >= 2, "cohort of {COHORT_DEVICES} covered only {covered} scheme(s)");
}
