//! Property-based tests (proptest) over the core invariants.
//!
//! Random reference graphs and random mutation scripts must never violate:
//! * GC soundness — reachable objects survive, unreachable objects die,
//! * copying fidelity — sizes, contexts and topology are preserved,
//! * grouping completeness — every live FGO gets a class and a matching
//!   region,
//! * kernel conservation — resident + swapped = mapped, LRU order respects
//!   accesses.

use fleet_gc::{
    BackgroundObjectGc, Collector, FullCopyingGc, GcCostModel, GroupingGc, MarvinGc, NoTouch,
};
use fleet_heap::{
    depth_map, reachable_set, AllocContext, Heap, HeapConfig, ObjectClass, ObjectId, RegionKind,
};
use fleet_kernel::{
    AccessKind, Advice, MemoryManager, MmConfig, PageKind, Pid, SwapConfig, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// A random object graph: object sizes plus edges between earlier/later ids.
#[derive(Debug, Clone)]
struct GraphSpec {
    sizes: Vec<u32>,
    edges: Vec<(usize, usize)>,
    roots: Vec<usize>,
}

fn graph_strategy(max_objects: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_objects).prop_flat_map(|n| {
        let sizes = proptest::collection::vec(16u32..2048, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..3 * n);
        let roots = proptest::collection::vec(0..n, 1..4);
        (sizes, edges, roots).prop_map(|(sizes, edges, roots)| GraphSpec { sizes, edges, roots })
    })
}

fn build(spec: &GraphSpec) -> (Heap, Vec<ObjectId>) {
    let mut heap = Heap::new(HeapConfig::default());
    let ids: Vec<ObjectId> = spec.sizes.iter().map(|&s| heap.alloc(s)).collect();
    for &(from, to) in &spec.edges {
        heap.add_ref(ids[from], ids[to]);
    }
    for &r in &spec.roots {
        heap.add_root(ids[r]);
    }
    (heap, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_gc_is_sound(spec in graph_strategy(120)) {
        let (mut heap, ids) = build(&spec);
        let live_before = reachable_set(&heap);
        let sizes: HashMap<ObjectId, u32> =
            ids.iter().map(|&id| (id, heap.object(id).size())).collect();
        let depths_before = depth_map(&heap, None);

        FullCopyingGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);

        // Exactly the reachable set survives.
        for &id in &ids {
            prop_assert_eq!(heap.contains(id), live_before.contains(&id));
        }
        // Copying preserves sizes and graph shape.
        for &id in &live_before {
            prop_assert_eq!(heap.object(id).size(), sizes[&id]);
        }
        prop_assert_eq!(depth_map(&heap, None), depths_before);
        // No dangling references anywhere.
        for id in heap.object_ids().collect::<Vec<_>>() {
            for &r in heap.object(id).refs() {
                prop_assert!(heap.contains(r), "dangling {r} from {id}");
            }
        }
    }

    #[test]
    fn grouping_classifies_every_live_fgo(spec in graph_strategy(100), depth in 0u32..6) {
        let (mut heap, _) = build(&spec);
        heap.retire_alloc_targets();
        heap.clear_newly_allocated_flags();
        let live = reachable_set(&heap);
        let (_, outcome) = GroupingGc::new(GcCostModel::default(), depth, HashSet::new())
            .collect_grouping(&mut heap, &mut NoTouch);
        let mut classified = 0u64;
        for &id in &live {
            let class = heap.object(id).class().expect("live FGO must be classified");
            let kind = heap.region(heap.object(id).region()).kind();
            let expect = match class {
                ObjectClass::Nro | ObjectClass::Fyo => RegionKind::Launch,
                ObjectClass::Ws => RegionKind::Ws,
                ObjectClass::Cold => RegionKind::Cold,
            };
            prop_assert_eq!(kind, expect);
            classified += 1;
        }
        prop_assert_eq!(classified, outcome.launch_objects + outcome.ws_objects + outcome.cold_objects);
        // NRO really are the depth-bounded set.
        let depths = depth_map(&heap, None);
        for &id in &live {
            if depths[&id] <= depth {
                prop_assert_eq!(heap.object(id).class(), Some(ObjectClass::Nro));
            }
        }
    }

    #[test]
    fn bgc_never_frees_fgo_and_frees_only_garbage_bgo(
        spec in graph_strategy(80),
        bgo_count in 1usize..40,
        attach in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let (mut heap, fgo_ids) = build(&spec);
        heap.cards_mut().clear();
        heap.set_context(AllocContext::Background);
        let mut bgo_ids = Vec::new();
        for i in 0..bgo_count {
            let b = heap.alloc(64);
            if attach[i % attach.len()] {
                // Attach under a root so it is reachable.
                let root = heap.roots()[0];
                heap.add_ref(root, b);
            }
            bgo_ids.push(b);
        }
        let live_before = reachable_set(&heap);
        BackgroundObjectGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
        for &id in &fgo_ids {
            prop_assert!(heap.contains(id), "BGC must never free FGO");
        }
        for &id in &bgo_ids {
            prop_assert_eq!(heap.contains(id), live_before.contains(&id));
        }
    }

    #[test]
    fn marvin_gc_is_sound_with_random_bookmarks(
        spec in graph_strategy(80),
        marks in proptest::collection::vec(any::<bool>(), 80),
    ) {
        let (mut heap, ids) = build(&spec);
        let mut gc = MarvinGc::new(GcCostModel::default(), 1024);
        for (i, &id) in ids.iter().enumerate() {
            if marks[i % marks.len()] {
                gc.state_mut().mark_swapped(&heap, id);
            }
        }
        let live_before = reachable_set(&heap);
        let addr_before: HashMap<ObjectId, u64> =
            live_before.iter().map(|&id| (id, heap.address(id))).collect();
        gc.collect(&mut heap, &mut NoTouch);
        for &id in &ids {
            prop_assert_eq!(heap.contains(id), live_before.contains(&id));
        }
        // Non-moving: addresses are stable.
        for (&id, &addr) in &addr_before {
            prop_assert_eq!(heap.address(id), addr);
        }
        // Stubs of dead objects are gone.
        for obj in gc.state().swapped_objects().collect::<Vec<_>>() {
            prop_assert!(heap.contains(obj));
        }
    }

    #[test]
    fn kernel_conserves_pages(
        ops in proptest::collection::vec((0u8..5, 0u64..64), 1..200),
    ) {
        let mut mm = MemoryManager::new(MmConfig {
            dram_bytes: 48 * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: 48 * PAGE_SIZE, ..SwapConfig::default() },
            low_watermark_frames: 4,
            high_watermark_frames: 8,
            ..MmConfig::default()
        });
        let pid = Pid(1);
        let mut mapped: HashSet<u64> = HashSet::new();
        for (op, page) in ops {
            let addr = page * PAGE_SIZE;
            match op {
                0 => {
                    let kind = if page % 3 == 0 { PageKind::File } else { PageKind::Anon };
                    if mm.map_range_kind(pid, addr, PAGE_SIZE, kind).is_ok() {
                        mapped.insert(page);
                    }
                }
                1 => {
                    mm.unmap_range(pid, addr, PAGE_SIZE);
                    mapped.remove(&page);
                }
                2 => {
                    let _ = mm.access(pid, addr, 64, AccessKind::Mutator);
                }
                3 => {
                    mm.madvise(pid, addr, PAGE_SIZE, Advice::ColdRuntime);
                }
                _ => {
                    mm.kswapd();
                }
            }
            // Conservation: every mapped page is resident or swapped; counts match.
            let mem = mm.process_mem(pid);
            prop_assert_eq!(mem.resident + mem.swapped, mapped.len() as u64);
            prop_assert!(mm.used_frames() <= mm.frames_capacity());
            prop_assert!(mm.swap().used_pages() <= mm.swap().capacity_pages());
        }
    }

    #[test]
    fn lru_eviction_never_returns_a_recently_touched_page_first(
        touches in proptest::collection::vec(0u64..16, 1..64),
    ) {
        use fleet_kernel::{LruQueue, PageKey};
        let mut lru = LruQueue::new();
        for i in 0..16u64 {
            lru.insert(PageKey { pid: Pid(1), index: i });
        }
        for &t in &touches {
            lru.touch(PageKey { pid: Pid(1), index: t });
        }
        let last = *touches.last().expect("non-empty");
        // The most recently touched page is popped last.
        let mut order = Vec::new();
        while let Some(k) = lru.pop_coldest() {
            order.push(k.index);
        }
        prop_assert_eq!(order.len(), 16);
        prop_assert_eq!(*order.last().expect("non-empty"), last);
    }
}
